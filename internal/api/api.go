// Package api is the versioned HTTP surface of the Litmus pricing service:
// a reusable Server that prices invocations through core.Pricer — the exact
// code the in-process simulation path uses — bills them through the
// internal/ledger subsystem, and a typed Client for tenant agents.
//
// Versioned endpoints:
//
//	GET  /healthz                    — liveness + ledger saturation counters
//	POST /v1/quote                   — legacy single quote (wire-compatible
//	                                   with the original pricingd)
//	GET  /v1/tables                  — legacy calibration dump
//	POST /v2/quote                   — single quote; named pricer, optional
//	                                   tenant ledger accrual
//	POST /v2/quotes                  — batch quote, priced concurrently,
//	                                   response order matches request order
//	POST /v2/meter                   — buffered usage batch into the tenant
//	                                   ledger (partial batches accrue; bad
//	                                   records come back as per-item errors)
//	GET  /v2/pricers                 — the named pricer registry
//	GET  /v2/tables                  — current calibration tables
//	POST /v2/tables                  — hot-swap calibration tables
//	GET  /v2/tenants/{tenant}/summary — per-tenant billing ledger
//
// The /v3 surface is resource-oriented: usage is a stream you append to,
// tenants are a paginated collection, a statement is a windowed read of a
// tenant's bill, and the calibration tables are a versioned resource:
//
//	POST /v3/usage                    — streaming usage ingest in either
//	                                    wire format — NDJSON (one record per
//	                                    line) or binary frames (Content-Type
//	                                    application/x-litmus-frames, see
//	                                    frames.go) — decoded in constant
//	                                    memory, per-line errors, idempotent
//	                                    retries via idempotency keys
//	GET  /v3/tenants                  — sorted tenant listing with cursor
//	                                    pagination (?cursor=&limit=)
//	GET  /v3/tenants/{tenant}/statement — windowed bill (?from=&to= trace
//	                                    minutes), commercial-vs-charged per
//	                                    window with one line per pricer
//	GET  /v3/tables                   — tables + ETag (If-None-Match → 304)
//	PUT  /v3/tables                   — swap tables; If-Match makes
//	                                    concurrent swaps lost-update-safe
//	                                    (mismatch → 412)
//
// All three versions bill through the same ledger: a record metered via
// /v2/meter and the same record streamed via /v3/usage produce identical
// statements. v2/v3 errors are structured:
// {"error":{"status":400,"message":"…"}}. The v1 endpoints keep the legacy
// flat {"error":"…"} shape.
package api

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/ledger"
)

// Limits applied when Config leaves them zero.
const (
	// DefaultMaxBodyBytes bounds request bodies (http.MaxBytesReader) and,
	// on /v3/usage, each NDJSON line / binary frame payload.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxBatch bounds the number of quotes in one /v2/quotes call.
	DefaultMaxBatch = 1024
	// DefaultMaxTenants bounds the billing ledger's tenant count.
	DefaultMaxTenants = 100_000
	// DefaultShards is the ledger's lock-stripe count: tenants are
	// hash-partitioned over this many independently locked shards so
	// concurrent ingest paths accrue in parallel.
	DefaultShards = ledger.DefaultShards
	// DefaultMaxStreamLines bounds the physical lines in one /v3/usage
	// stream — deliberately far beyond DefaultMaxBatch; the decode loop is
	// constant-memory either way, and the bound keeps a client from
	// pinning the handler with an endless stream.
	DefaultMaxStreamLines = 1_000_000
	// DefaultMaxStreamErrors caps the per-line errors echoed back from one
	// /v3/usage stream (rejections are always counted, never capped).
	DefaultMaxStreamErrors = 64
	// DefaultTenantPageLimit is the /v3/tenants page size when the request
	// names none; MaxTenantPageLimit caps it.
	DefaultTenantPageLimit = 100
	MaxTenantPageLimit     = 1000
)

// Error is the structured v2 error payload; it doubles as the error value
// the Client returns for non-2xx responses.
type Error struct {
	// Status is the HTTP status code.
	Status int `json:"status"`
	// Message describes the failure.
	Message string `json:"message"`
	// RetryAfterSec, on a 429 (and some 503s), is how long the client
	// should wait before retrying — the precise float behind the
	// whole-second Retry-After response header.
	RetryAfterSec float64 `json:"retryAfterSec,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("api: %d: %s", e.Status, e.Message)
}

// RetryAfterHeader renders a Retry-After delay as the whole-second header
// value (rounded up, minimum 1 — a zero header would mean "retry now").
func RetryAfterHeader(sec float64) string {
	s := int64(math.Ceil(sec))
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// errorEnvelope is the v2 error wire shape.
type errorEnvelope struct {
	Err Error `json:"error"`
}

// QuoteRequest is the wire format of POST /v2/quote and the element type of
// /v2/quotes. The usage fields are inlined (abbr, language, memoryMB,
// tPrivate, tShared, probe).
type QuoteRequest struct {
	core.Usage
	// Tenant, when set, accrues this quote in the tenant's billing ledger.
	Tenant string `json:"tenant,omitempty"`
	// Pricer names the registry entry to price with; empty selects litmus.
	Pricer string `json:"pricer,omitempty"`
}

// EstimateBody explains the congestion reading behind a quote's rates.
type EstimateBody struct {
	PrivSlow   float64 `json:"privSlow"`
	SharedSlow float64 `json:"sharedSlow"`
	TotalSlow  float64 `json:"totalSlow"`
	Weight     float64 `json:"mbWeight"`
}

// QuoteResponse is one priced invocation on the wire.
type QuoteResponse struct {
	Abbr   string `json:"abbr,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Pricer is the registry entry that produced the quote.
	Pricer string `json:"pricer"`
	// Commercial is the undiscounted pay-as-you-go price (MB·s × rate).
	Commercial float64 `json:"commercial"`
	// Price is the charged amount; Discount its fraction below Commercial.
	Price    float64 `json:"price"`
	Discount float64 `json:"discount"`
	// PPrivate / PShared decompose Price; RPrivate / RShared are the rates.
	PPrivate float64 `json:"pPrivate"`
	PShared  float64 `json:"pShared"`
	RPrivate float64 `json:"rPrivate"`
	RShared  float64 `json:"rShared"`
	// Estimate carries the congestion estimate when the pricer produced one.
	Estimate EstimateBody `json:"estimate"`
}

// BatchRequest is the wire format of POST /v2/quotes.
type BatchRequest struct {
	Quotes []QuoteRequest `json:"quotes"`
}

// BatchItem is one batch result: exactly one of Quote or Error is set, and
// item i answers request i.
type BatchItem struct {
	Quote *QuoteResponse `json:"quote,omitempty"`
	Error *Error         `json:"error,omitempty"`
}

// BatchResponse is the wire format of the /v2/quotes reply.
type BatchResponse struct {
	Quotes []BatchItem `json:"quotes"`
}

// MeterRequest is the wire format of POST /v2/meter: a usage batch an
// external platform streams into the tenant ledger. Every record must name
// a tenant (metering is accrual; an un-attributed record cannot accrue).
type MeterRequest struct {
	Records []QuoteRequest `json:"records"`
}

// MeterItem is one metered record's outcome: either the accrued prices or
// the error that rejected it. Item i answers record i.
type MeterItem struct {
	Tenant     string  `json:"tenant,omitempty"`
	Pricer     string  `json:"pricer,omitempty"`
	Commercial float64 `json:"commercial,omitempty"`
	Price      float64 `json:"price,omitempty"`
	Error      *Error  `json:"error,omitempty"`
}

// MeterResponse is the wire format of the /v2/meter reply. Partial batches
// succeed: rejected records come back as per-item errors while the rest
// accrue.
type MeterResponse struct {
	Accepted int         `json:"accepted"`
	Rejected int         `json:"rejected"`
	Items    []MeterItem `json:"items"`
	// Tenants holds the post-accrual ledger summaries of every tenant the
	// batch touched, sorted by name.
	Tenants []TenantSummary `json:"tenants"`
}

// PricerInfo describes one registry entry (GET /v2/pricers).
type PricerInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Default marks the pricer used when a request names none.
	Default bool `json:"default,omitempty"`
}

// TablesStatus summarises the active calibration (POST /v2/tables reply).
type TablesStatus struct {
	Machine      string `json:"machine"`
	SharePerCore int    `json:"sharePerCore"`
	Generators   int    `json:"generators"`
	Languages    int    `json:"languages"`
}

// TenantSummary is a tenant's aggregate billing ledger
// (GET /v2/tenants/{tenant}/summary, the elements of GET /v3/tenants).
type TenantSummary struct {
	Tenant string `json:"tenant"`
	// Invocations counts the quotes accrued to the ledger.
	Invocations int64 `json:"invocations"`
	// Commercial and Billed are the aggregate undiscounted and charged
	// totals; Discount is the aggregate fraction saved.
	Commercial float64 `json:"commercial"`
	Billed     float64 `json:"billed"`
	Discount   float64 `json:"discount"`
}

// HealthResponse is the /healthz body: liveness plus the ledger's
// saturation counters, so operators see accruals dropped at the tenant cap
// instead of losing them silently.
type HealthResponse struct {
	OK bool `json:"ok"`
	// Standby is true while the node is a write-gated replication follower:
	// reads serve the replicated state, ingest answers 503 until promotion.
	Standby bool `json:"standby,omitempty"`
	// Version identifies the build (VCS revision et al.) — in a cluster the
	// only external way to tell nodes apart; UptimeSec is the seconds since
	// the server was constructed.
	Version   *VersionInfo `json:"version,omitempty"`
	UptimeSec int64        `json:"uptimeSec"`
	// Tenants is the current ledger account count; MaxTenants its cap.
	Tenants    int `json:"tenants"`
	MaxTenants int `json:"maxTenants"`
	// Accrued / DroppedAccruals / DuplicateAccruals are cumulative accrual
	// outcome counters since startup.
	Accrued           uint64 `json:"accrued"`
	DroppedAccruals   uint64 `json:"droppedAccruals"`
	DuplicateAccruals uint64 `json:"duplicateAccruals"`
	// IdempotencyKeys is the retained dedup-key count; KeysEvicted counts
	// keys aged out (an evicted key can double-bill on replay).
	IdempotencyKeys int    `json:"idempotencyKeys"`
	KeysEvicted     uint64 `json:"keysEvicted"`
	// Shards is the ledger's lock-stripe count; ShardHealth reports each
	// stripe's occupancy, so hot-tenant skew saturating one shard is
	// visible even while the aggregate counters look healthy.
	Shards      int           `json:"shards"`
	ShardHealth []ShardHealth `json:"shardHealth"`
	// TablesETag is the current calibration-table version (see /v3/tables).
	TablesETag string `json:"tablesETag"`
	// Durability reports the ledger's persistence state; omitted when the
	// server runs a volatile ledger (no data dir).
	Durability *DurabilityHealth `json:"durability,omitempty"`
	// Requests is the per-endpoint request accounting: external load
	// generators corroborate their client-side request counts against it.
	Requests *RequestHealth `json:"requests,omitempty"`
	// Admission reports the per-tenant admission controller; omitted when
	// admission control is disabled (Config.AdmissionRate == 0).
	Admission *AdmissionHealth `json:"admission,omitempty"`
}

// AdmissionHealth is the /healthz admission-control block.
type AdmissionHealth struct {
	// RatePerSec / Burst / WindowSec / Budget echo the configuration.
	RatePerSec float64 `json:"ratePerSec"`
	Burst      float64 `json:"burst"`
	WindowSec  float64 `json:"windowSec"`
	Budget     float64 `json:"budget,omitempty"`
	// Admitted / Throttled are cumulative record counts across tenants.
	Admitted  int64 `json:"admitted"`
	Throttled int64 `json:"throttled"`
	// Tenants lists per-tenant admission state, most throttled first
	// (capped).
	Tenants []TenantAdmissionHealth `json:"tenants,omitempty"`
}

// TenantAdmissionHealth is one tenant's admission state: the live refill
// rate, the forecaster's view, and the throttle counters.
type TenantAdmissionHealth struct {
	Tenant string `json:"tenant"`
	// RefillPerSec is the current token-bucket refill rate the forecaster
	// sized; ObservedRate / ForecastRate are the last window's actual and
	// next window's predicted arrival rates; ForecastError is the smoothed
	// absolute forecast error.
	RefillPerSec  float64 `json:"refillPerSec"`
	ObservedRate  float64 `json:"observedRate"`
	ForecastRate  float64 `json:"forecastRate"`
	ForecastError float64 `json:"forecastError"`
	Admitted      int64   `json:"admitted"`
	Throttled     int64   `json:"throttled"`
	// ProjectedBill / Squeezed report price-aware mode: the projected
	// cumulative bill and whether it exceeded the budget this window.
	ProjectedBill float64 `json:"projectedBill,omitempty"`
	Squeezed      bool    `json:"squeezed,omitempty"`
}

// ForecastResponse is the GET /v3/tenants/{tenant}/forecast body: the
// admission controller's next-window prediction plus the ledger windows it
// is grounded in.
type ForecastResponse struct {
	Tenant string `json:"tenant"`
	// WindowSec is the observation-window width the rates below are per.
	WindowSec     float64 `json:"windowSec"`
	ObservedRate  float64 `json:"observedRate"`
	ForecastRate  float64 `json:"forecastRate"`
	ForecastError float64 `json:"forecastError"`
	RefillPerSec  float64 `json:"refillPerSec"`
	Burst         float64 `json:"burst"`
	Admitted      int64   `json:"admitted"`
	Throttled     int64   `json:"throttled"`
	ProjectedBill float64 `json:"projectedBill,omitempty"`
	Budget        float64 `json:"budget,omitempty"`
	Squeezed      bool    `json:"squeezed,omitempty"`
	// Windows holds the tenant's most recent statement windows (the
	// accrual history behind the projection), sorted by window.
	Windows []StatementLine `json:"windows,omitempty"`
}

// RequestHealth is the /healthz request-accounting block.
type RequestHealth struct {
	// InFlight gauges requests currently inside a handler; the /healthz
	// read reporting it counts itself, so an idle server reports 1.
	InFlight int64 `json:"inFlight"`
	// Endpoints maps each route pattern (e.g. "/v3/usage") to its
	// cumulative request and error-response counters since startup.
	Endpoints map[string]EndpointHealth `json:"endpoints"`
}

// EndpointHealth is one route's cumulative request accounting.
type EndpointHealth struct {
	// Requests counts requests routed to the endpoint; Errors the subset
	// answered with status ≥ 400.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// DurabilityHealth is the /healthz durability block of a server backed by a
// durable ledger (Config.DataDir).
type DurabilityHealth struct {
	// Dir is the data directory; Fsync the configured sync policy.
	Dir   string `json:"dir"`
	Fsync string `json:"fsync"`
	// WALBytes is the live write-ahead-log footprint; WALRecords counts
	// records appended since startup; Syncs counts fsync syscalls.
	WALBytes   int64  `json:"walBytes"`
	WALRecords uint64 `json:"walRecords"`
	Syncs      uint64 `json:"syncs"`
	// Snapshots counts compacting snapshots since startup;
	// LastSnapshotGen/Unix describe the newest committed one.
	// LastSnapshotError / LastSyncError are the most recent background
	// snapshot/fsync failures ("" when healthy) — the latter is the only
	// signal of a dying disk under fsync=interval.
	Snapshots         uint64 `json:"snapshots"`
	LastSnapshotGen   uint64 `json:"lastSnapshotGen,omitempty"`
	LastSnapshotUnix  int64  `json:"lastSnapshotUnix,omitempty"`
	LastSnapshotError string `json:"lastSnapshotError,omitempty"`
	LastSyncError     string `json:"lastSyncError,omitempty"`
	// Recovery describes what this process rebuilt at startup: the
	// snapshot generation loaded, WAL records replayed on top of it, and
	// any torn trailing bytes truncated from a crashed final segment.
	Recovery ledger.RecoveryStats `json:"recovery"`
}

// ShardHealth is one ledger shard's occupancy on /healthz.
type ShardHealth struct {
	// Tenants is the shard's account count; Keys its retained
	// idempotency-key count.
	Tenants int `json:"tenants"`
	Keys    int `json:"keys"`
}

// UsageRecord is one NDJSON line of POST /v3/usage: a billable usage record
// with windowing and retry-safety metadata on top of the /v2 quote shape.
type UsageRecord struct {
	QuoteRequest
	// Minute is the trace minute the usage belongs to; it selects the
	// statement window the accrual lands in.
	Minute int `json:"minute,omitempty"`
	// Key, when set, makes the record idempotent: re-streaming it with the
	// same key is reported as a duplicate and not billed again. Lines
	// without a key inherit one derived from the request's Idempotency-Key
	// header and the line number.
	Key string `json:"key,omitempty"`
}

// LineError is one rejected NDJSON line (1-based line number).
type LineError struct {
	Line  int   `json:"line"`
	Error Error `json:"error"`
}

// UsageStreamResponse is the POST /v3/usage reply. The stream is processed
// line by line: every line is accounted for in exactly one of Accepted,
// Duplicates, Rejected or Dropped.
type UsageStreamResponse struct {
	// Lines counts the non-blank lines read.
	Lines int `json:"lines"`
	// Accepted lines billed; Duplicates were already billed under their
	// idempotency key (safe retries); Rejected failed validation or
	// pricing; Dropped hit the ledger's tenant cap; Throttled hit the
	// tenant's admission rate limit (429 per line — retry after
	// RetryAfterSec, never billed).
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	Rejected   int `json:"rejected"`
	Dropped    int `json:"dropped"`
	Throttled  int `json:"throttled,omitempty"`
	// RetryAfterSec, when lines were throttled, is the longest per-line
	// retry delay — waiting it out clears every throttle in the stream. It
	// is also sent as the whole-second Retry-After response header.
	RetryAfterSec float64 `json:"retryAfterSec,omitempty"`
	// Errors echoes the first rejected/dropped lines (capped; counts are
	// not).
	Errors []LineError `json:"errors,omitempty"`
	// StreamError is set when reading stopped early (oversized line, line
	// cap, transport error); everything before it still accrued.
	StreamError string `json:"streamError,omitempty"`
	// Tenants holds the post-accrual summaries of every tenant the stream
	// touched, sorted by name.
	Tenants []TenantSummary `json:"tenants"`
}

// TenantPage is one GET /v3/tenants page: summaries sorted by tenant name.
// NextCursor, when non-empty, fetches the next page via ?cursor=.
type TenantPage struct {
	Tenants    []TenantSummary `json:"tenants"`
	NextCursor string          `json:"nextCursor,omitempty"`
}

// StatementLine is one statement window: the bill for trace minutes
// [StartMinute, StartMinute+WindowMinutes).
type StatementLine struct {
	Window      int   `json:"window"`
	StartMinute int   `json:"startMinute"`
	Invocations int64 `json:"invocations"`
	// Commercial is the window's undiscounted total; Billed what was
	// charged; Bills breaks Billed down by pricer (the
	// commercial-vs-litmus lines of the bill).
	Commercial float64            `json:"commercial"`
	Billed     float64            `json:"billed"`
	Bills      map[string]float64 `json:"bills"`
}

// StatementResponse is a tenant's windowed bill
// (GET /v3/tenants/{tenant}/statement). Totals cover the included windows
// only.
type StatementResponse struct {
	Tenant        string `json:"tenant"`
	WindowMinutes int    `json:"windowMinutes"`
	// FromMinute / ToMinute echo the requested range; -1 means open-ended.
	FromMinute  int             `json:"fromMinute"`
	ToMinute    int             `json:"toMinute"`
	Invocations int64           `json:"invocations"`
	Commercial  float64         `json:"commercial"`
	Billed      float64         `json:"billed"`
	Discount    float64         `json:"discount"`
	Lines       []StatementLine `json:"lines"`
}
