// Package api is the versioned HTTP surface of the Litmus pricing service:
// a reusable Server that prices invocations through core.Pricer — the exact
// code the in-process simulation path uses — and a typed Client for tenant
// agents.
//
// Versioned endpoints:
//
//	GET  /healthz                    — liveness
//	POST /v1/quote                   — legacy single quote (wire-compatible
//	                                   with the original pricingd)
//	GET  /v1/tables                  — legacy calibration dump
//	POST /v2/quote                   — single quote; named pricer, optional
//	                                   tenant ledger accrual
//	POST /v2/quotes                  — batch quote, priced concurrently,
//	                                   response order matches request order
//	POST /v2/meter                   — stream a usage batch into the tenant
//	                                   ledger (partial batches accrue; bad
//	                                   records come back as per-item errors)
//	GET  /v2/pricers                 — the named pricer registry
//	GET  /v2/tables                  — current calibration tables
//	POST /v2/tables                  — hot-swap calibration tables
//	GET  /v2/tenants/{tenant}/summary — per-tenant billing ledger
//
// v2 errors are structured: {"error":{"status":400,"message":"…"}}. The v1
// endpoints keep the legacy flat {"error":"…"} shape.
package api

import (
	"fmt"

	"repro/internal/core"
)

// Limits applied when Config leaves them zero.
const (
	// DefaultMaxBodyBytes bounds request bodies (http.MaxBytesReader).
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxBatch bounds the number of quotes in one /v2/quotes call.
	DefaultMaxBatch = 1024
	// DefaultMaxTenants bounds the billing ledger's tenant count.
	DefaultMaxTenants = 100_000
)

// Error is the structured v2 error payload; it doubles as the error value
// the Client returns for non-2xx responses.
type Error struct {
	// Status is the HTTP status code.
	Status int `json:"status"`
	// Message describes the failure.
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("api: %d: %s", e.Status, e.Message)
}

// errorEnvelope is the v2 error wire shape.
type errorEnvelope struct {
	Err Error `json:"error"`
}

// QuoteRequest is the wire format of POST /v2/quote and the element type of
// /v2/quotes. The usage fields are inlined (abbr, language, memoryMB,
// tPrivate, tShared, probe).
type QuoteRequest struct {
	core.Usage
	// Tenant, when set, accrues this quote in the tenant's billing ledger.
	Tenant string `json:"tenant,omitempty"`
	// Pricer names the registry entry to price with; empty selects litmus.
	Pricer string `json:"pricer,omitempty"`
}

// EstimateBody explains the congestion reading behind a quote's rates.
type EstimateBody struct {
	PrivSlow   float64 `json:"privSlow"`
	SharedSlow float64 `json:"sharedSlow"`
	TotalSlow  float64 `json:"totalSlow"`
	Weight     float64 `json:"mbWeight"`
}

// QuoteResponse is one priced invocation on the wire.
type QuoteResponse struct {
	Abbr   string `json:"abbr,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Pricer is the registry entry that produced the quote.
	Pricer string `json:"pricer"`
	// Commercial is the undiscounted pay-as-you-go price (MB·s × rate).
	Commercial float64 `json:"commercial"`
	// Price is the charged amount; Discount its fraction below Commercial.
	Price    float64 `json:"price"`
	Discount float64 `json:"discount"`
	// PPrivate / PShared decompose Price; RPrivate / RShared are the rates.
	PPrivate float64 `json:"pPrivate"`
	PShared  float64 `json:"pShared"`
	RPrivate float64 `json:"rPrivate"`
	RShared  float64 `json:"rShared"`
	// Estimate carries the congestion estimate when the pricer produced one.
	Estimate EstimateBody `json:"estimate"`
}

// BatchRequest is the wire format of POST /v2/quotes.
type BatchRequest struct {
	Quotes []QuoteRequest `json:"quotes"`
}

// BatchItem is one batch result: exactly one of Quote or Error is set, and
// item i answers request i.
type BatchItem struct {
	Quote *QuoteResponse `json:"quote,omitempty"`
	Error *Error         `json:"error,omitempty"`
}

// BatchResponse is the wire format of the /v2/quotes reply.
type BatchResponse struct {
	Quotes []BatchItem `json:"quotes"`
}

// MeterRequest is the wire format of POST /v2/meter: a usage batch an
// external platform streams into the tenant ledger. Every record must name
// a tenant (metering is accrual; an un-attributed record cannot accrue).
type MeterRequest struct {
	Records []QuoteRequest `json:"records"`
}

// MeterItem is one metered record's outcome: either the accrued prices or
// the error that rejected it. Item i answers record i.
type MeterItem struct {
	Tenant     string  `json:"tenant,omitempty"`
	Pricer     string  `json:"pricer,omitempty"`
	Commercial float64 `json:"commercial,omitempty"`
	Price      float64 `json:"price,omitempty"`
	Error      *Error  `json:"error,omitempty"`
}

// MeterResponse is the wire format of the /v2/meter reply. Partial batches
// succeed: rejected records come back as per-item errors while the rest
// accrue.
type MeterResponse struct {
	Accepted int         `json:"accepted"`
	Rejected int         `json:"rejected"`
	Items    []MeterItem `json:"items"`
	// Tenants holds the post-accrual ledger summaries of every tenant the
	// batch touched, sorted by name.
	Tenants []TenantSummary `json:"tenants"`
}

// PricerInfo describes one registry entry (GET /v2/pricers).
type PricerInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Default marks the pricer used when a request names none.
	Default bool `json:"default,omitempty"`
}

// TablesStatus summarises the active calibration (POST /v2/tables reply).
type TablesStatus struct {
	Machine      string `json:"machine"`
	SharePerCore int    `json:"sharePerCore"`
	Generators   int    `json:"generators"`
	Languages    int    `json:"languages"`
}

// TenantSummary is a tenant's aggregate billing ledger
// (GET /v2/tenants/{tenant}/summary).
type TenantSummary struct {
	Tenant string `json:"tenant"`
	// Invocations counts the quotes accrued to the ledger.
	Invocations int64 `json:"invocations"`
	// Commercial and Billed are the aggregate undiscounted and charged
	// totals; Discount is the aggregate fraction saved.
	Commercial float64 `json:"commercial"`
	Billed     float64 `json:"billed"`
	Discount   float64 `json:"discount"`
}
