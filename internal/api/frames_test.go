package api

// Equivalence proof for the binary ingest fast path: the frame stream and
// the NDJSON stream are one endpoint with two encodings. Every test here
// holds the two formats to identical statements, counters, per-line errors
// and idempotency outcomes — the wire format may only change the cost of a
// stream, never its meaning.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/api/apitest"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/ledger/ledgertest"
)

// frameRecord builds one typed usage record at the fixture's congested
// reading — the binary twin of ndLine. minute < 0 leaves the field zero.
func frameRecord(tenant string, mem, minute int, key string) UsageRecord {
	rec := UsageRecord{QuoteRequest: QuoteRequest{
		Usage: core.Usage{
			Language: "py",
			MemoryMB: mem,
			TPrivate: 0.08,
			TShared:  0.02,
			Probe: &core.ProbeUsage{
				TPrivate:        apitest.SoloTPrivate * 1.3,
				TShared:         apitest.SoloTShared * 1.9,
				MachineL3Misses: 1.2e7,
			},
		},
		Tenant: tenant,
	}, Key: key}
	if minute > 0 {
		rec.Minute = minute
	}
	return rec
}

// postBody POSTs a raw /v3/usage body under the given content type.
func postBody(t testing.TB, url, key, contentType string, body []byte) UsageStreamResponse {
	t.Helper()
	raw, status := postBodyRaw(t, url, key, contentType, body)
	if status != http.StatusOK {
		t.Fatalf("stream status = %d: %s", status, raw)
	}
	var out UsageStreamResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func postBodyRaw(t testing.TB, url, key, contentType string, body []byte) ([]byte, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v3/usage", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp.StatusCode
}

// decodeAll decodes every frame in body, returning the records (deep
// copies) and the error that ended the stream (nil on clean EOF).
func decodeAll(body []byte, maxPayload int64) ([]UsageRecord, []string, error) {
	fr := NewFrameReader(bytes.NewReader(body), maxPayload)
	dec := &FrameDecoder{}
	var recs []UsageRecord
	var rejects []string
	for {
		payload, crc, err := fr.Next()
		if err == io.EOF {
			return recs, rejects, nil
		}
		if err != nil {
			return recs, rejects, err
		}
		rec, apiErr := dec.Decode(payload, crc)
		if apiErr != nil {
			rejects = append(rejects, apiErr.Message)
			continue
		}
		cp := *rec
		if rec.Probe != nil {
			p := *rec.Probe
			cp.Probe = &p
		}
		recs = append(recs, cp)
	}
}

func TestUsageFrameRoundTrip(t *testing.T) {
	records := []UsageRecord{
		frameRecord("acme", 128, 3, "k-1"),
		frameRecord("zeta", 256, 0, ""),
		{QuoteRequest: QuoteRequest{Tenant: "bare"}},                        // all-zero usage, no probe
		{QuoteRequest: QuoteRequest{Tenant: "named", Pricer: "commercial"}}, // explicit pricer
		{QuoteRequest: QuoteRequest{
			Usage:  core.Usage{Abbr: "mm", Language: "c", MemoryMB: 1 << 20, TPrivate: -0.5, TShared: 1e-12},
			Tenant: "edge",
		}, Minute: -7, Key: strings.Repeat("k", 300)}, // negative minute and long key survive the wire
	}
	var body []byte
	for i := range records {
		body = AppendUsageFrame(body, &records[i])
	}
	got, rejects, err := decodeAll(body, DefaultMaxBodyBytes)
	if err != nil || len(rejects) != 0 {
		t.Fatalf("decode: err %v, rejects %v", err, rejects)
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip diverged:\n got  %+v\n want %+v", got, records)
	}

	// Decoding the same bytes again — same decoder state or fresh — must
	// yield the same records: the parser has no cross-frame state that can
	// leak into results.
	again, _, err := decodeAll(body, DefaultMaxBodyBytes)
	if err != nil || !reflect.DeepEqual(again, records) {
		t.Fatalf("second decode diverged: %v", err)
	}
}

// TestUsageStreamDifferential is the core equivalence proof: the same
// records through both wire formats produce byte-identical HTTP responses
// and equivalent ledgers — counters, per-line errors, derived idempotency
// keys, replay outcomes.
func TestUsageStreamDifferential(t *testing.T) {
	// The mixed workload: many tenants, retried keys, keyless records
	// (stream key derives theirs), and invalid-but-decodable records that
	// must reject identically in both formats.
	var records []UsageRecord
	for i := 0; i < 150; i++ {
		key := ""
		if i%3 == 0 {
			key = fmt.Sprintf("key-%d", i%17)
		}
		records = append(records, frameRecord(fmt.Sprintf("tenant-%03d", i%13), 128+(i%4)*64, i%7, key))
	}
	records = append(records,
		UsageRecord{QuoteRequest: QuoteRequest{Usage: core.Usage{Language: "py", MemoryMB: 64, TPrivate: 0.01}}}, // no tenant
		func() UsageRecord { r := frameRecord("neg", 128, 0, ""); r.Minute = -3; return r }(),                    // negative minute
		func() UsageRecord { r := frameRecord("far", 128, 0, ""); r.Minute = 1 << 33; return r }(),               // past the WAL bound
		func() UsageRecord { r := frameRecord("odd", 128, 0, ""); r.Pricer = "no-such"; return r }(),             // unknown pricer
		UsageRecord{QuoteRequest: QuoteRequest{Usage: core.Usage{MemoryMB: 0, TPrivate: 1}, Tenant: "bad"}},      // invalid usage
		frameRecord("tail", 192, 2, ""),
	)

	ledgers := map[WireFormat]*ledger.Ledger{}
	servers := map[WireFormat]*httptest.Server{}
	for _, wire := range []WireFormat{WireNDJSON, WireFrames} {
		led, err := ledger.New(ledger.Config{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{Calibration: apitest.Calibration(), Ledger: led})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		ledgers[wire], servers[wire] = led, ts
	}

	post := func(wire WireFormat, key string) []byte {
		t.Helper()
		body, err := EncodeUsageStream(wire, records)
		if err != nil {
			t.Fatal(err)
		}
		raw, status := postBodyRaw(t, servers[wire].URL, key, wire.ContentType(), body)
		if status != http.StatusOK {
			t.Fatalf("%v stream status = %d: %s", wire, status, raw)
		}
		return raw
	}

	nd, fr := post(WireNDJSON, "run-1"), post(WireFrames, "run-1")
	if !bytes.Equal(nd, fr) {
		t.Fatalf("responses diverged:\n ndjson: %s\n frames: %s", nd, fr)
	}
	var out UsageStreamResponse
	if err := json.Unmarshal(nd, &out); err != nil {
		t.Fatal(err)
	}
	if out.Rejected != 5 || out.Accepted == 0 {
		t.Fatalf("workload did not exercise the reject paths: %+v", out)
	}

	// Replay under the same stream key: both formats dedup identically,
	// because the derived per-line keys agree (frame n is line n).
	nd, fr = post(WireNDJSON, "run-1"), post(WireFrames, "run-1")
	if !bytes.Equal(nd, fr) {
		t.Fatalf("replay responses diverged:\n ndjson: %s\n frames: %s", nd, fr)
	}
	if err := json.Unmarshal(nd, &out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 0 || out.Duplicates == 0 {
		t.Fatalf("replay billed again: %+v", out)
	}

	// The strongest oracle: the two ledgers are observably identical —
	// stats, listings, every statement, byte for byte.
	if err := ledgertest.Diff(ledgers[WireNDJSON], ledgers[WireFrames]); err != nil {
		t.Fatalf("ledgers diverged: %v", err)
	}
}

// TestUsageFramesCorruption proves a corrupt frame rejects exactly one
// record: the length prefix keeps the offset in sync, so everything after
// the bad frame still bills, and the ledger matches a stream that never
// contained the record.
func TestUsageFramesCorruption(t *testing.T) {
	records := []UsageRecord{
		frameRecord("a", 128, 0, "k0"),
		frameRecord("b", 192, 1, "k1"),
		frameRecord("c", 256, 2, "k2"),
		frameRecord("d", 320, 3, "k3"),
		frameRecord("e", 384, 4, "k4"),
	}
	var body []byte
	offsets := []int{0}
	for i := range records {
		body = AppendUsageFrame(body, &records[i])
		offsets = append(offsets, len(body))
	}
	// Flip one payload byte of frame 3 (index 2); header stays intact.
	corrupt := bytes.Clone(body)
	corrupt[offsets[2]+frameHeaderLen+5] ^= 0xff

	ledCorrupt, err := ledger.New(ledger.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srvCorrupt, err := New(Config{Calibration: apitest.Calibration(), Ledger: ledCorrupt})
	if err != nil {
		t.Fatal(err)
	}
	tsCorrupt := httptest.NewServer(srvCorrupt)
	t.Cleanup(tsCorrupt.Close)

	out := postBody(t, tsCorrupt.URL, "", ContentTypeFrames, corrupt)
	if out.Lines != 5 || out.Accepted != 4 || out.Rejected != 1 {
		t.Fatalf("corrupt stream = %+v", out)
	}
	if len(out.Errors) != 1 || out.Errors[0].Line != 3 || out.Errors[0].Error.Message != "frame crc mismatch" {
		t.Fatalf("errors = %+v", out.Errors)
	}
	if out.StreamError != "" {
		t.Fatalf("a corrupt frame must not abort the stream: %q", out.StreamError)
	}

	// Ledger oracle: identical to a clean stream that never had frame 3.
	ledClean, err := ledger.New(ledger.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srvClean, err := New(Config{Calibration: apitest.Calibration(), Ledger: ledClean})
	if err != nil {
		t.Fatal(err)
	}
	tsClean := httptest.NewServer(srvClean)
	t.Cleanup(tsClean.Close)
	clean, err := EncodeUsageStream(WireFrames, append(records[:2:2], records[3:]...))
	if err != nil {
		t.Fatal(err)
	}
	if got := postBody(t, tsClean.URL, "", ContentTypeFrames, clean); got.Accepted != 4 {
		t.Fatalf("clean stream = %+v", got)
	}
	if err := ledgertest.DiffBills(ledCorrupt, ledClean); err != nil {
		t.Fatalf("corruption mis-billed: %v", err)
	}
}

// TestUsageFramesTruncation pins torn-stream semantics: a frame cut off
// mid-payload (or mid-header) aborts the stream with a descriptive
// StreamError, and everything before the tear still accrued.
func TestUsageFramesTruncation(t *testing.T) {
	records := []UsageRecord{frameRecord("a", 128, 0, ""), frameRecord("b", 192, 1, "")}
	body, err := EncodeUsageStream(WireFrames, records)
	if err != nil {
		t.Fatal(err)
	}
	first := AppendUsageFrame(nil, &records[0])
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		cut  int
		want string
	}{
		{"mid-payload", len(body) - 4, "torn frame payload"},
		{"mid-header", len(first) + 3, "torn frame header"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out := postBody(t, ts.URL, "", ContentTypeFrames, body[:tc.cut])
			if out.Accepted != 1 || out.Lines != 1 {
				t.Fatalf("truncated stream = %+v", out)
			}
			if !strings.Contains(out.StreamError, tc.want) {
				t.Fatalf("StreamError = %q, want %q", out.StreamError, tc.want)
			}
		})
	}
}

// TestUsageFramesOversized is the binary twin of the NDJSON oversized-line
// regression: a frame past the payload cap mid-stream stops reading, but is
// itself counted and reported per-line, and everything before it accrued.
func TestUsageFramesOversized(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	var body []byte
	big := frameRecord("big", 128, 0, strings.Repeat("x", 2048))
	for _, rec := range []UsageRecord{frameRecord("a", 128, 0, ""), frameRecord("b", 192, 1, ""), big, frameRecord("c", 256, 2, "")} {
		body = AppendUsageFrame(body, &rec)
	}
	out := postBody(t, ts.URL, "", ContentTypeFrames, body)
	if out.Lines != 3 || out.Accepted != 2 || out.Rejected != 1 {
		t.Fatalf("oversized stream = %+v", out)
	}
	want := "frame 3 exceeds 512 bytes"
	if out.StreamError != want {
		t.Fatalf("StreamError = %q, want %q", out.StreamError, want)
	}
	if len(out.Errors) != 1 || out.Errors[0].Line != 3 || out.Errors[0].Error.Message != want {
		t.Fatalf("errors = %+v", out.Errors)
	}
	if len(out.Tenants) != 2 {
		t.Fatalf("partial accounting lost: %+v", out.Tenants)
	}
}

// TestV3UsageStreamOversizedLineMidStream is the NDJSON regression for the
// silently-dropped oversized line: a line at 2× the cap mid-stream must be
// counted, rejected with its own per-line error, and reported as the
// StreamError — with everything before it accrued. Before the fix the
// stream aborted with the oversized line absent from every bucket.
func TestV3UsageStreamOversizedLineMidStream(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	long := ndLine("big", 128, 0, strings.Repeat("x", 1024))
	if len(long) < 1024 {
		t.Fatalf("oversized line only %d bytes", len(long))
	}
	body := ndLine("a", 128, 0, "") + "\n" + ndLine("b", 192, 1, "") + "\n" + long + "\n" + ndLine("c", 256, 2, "") + "\n"
	out := postStream(t, ts.URL, "", body)
	if out.Lines != 3 || out.Accepted != 2 || out.Rejected != 1 {
		t.Fatalf("oversized stream = %+v", out)
	}
	want := "line 3 exceeds 512 bytes"
	if out.StreamError != want {
		t.Fatalf("StreamError = %q, want %q", out.StreamError, want)
	}
	if len(out.Errors) != 1 || out.Errors[0].Line != 3 || out.Errors[0].Error.Message != want {
		t.Fatalf("errors = %+v", out.Errors)
	}
	if len(out.Tenants) != 2 {
		t.Fatalf("partial accounting lost: %+v", out.Tenants)
	}
}

// TestUsageFramesPipelined forces the multi-worker frame pipeline and holds
// it to the serial path's exact response: reordering workers must never
// reorder billing.
func TestUsageFramesPipelined(t *testing.T) {
	var records []UsageRecord
	for i := 0; i < 200; i++ {
		key := ""
		if i%5 == 0 {
			key = fmt.Sprintf("key-%d", i%13)
		}
		records = append(records, frameRecord(fmt.Sprintf("t-%02d", i%9), 128+(i%4)*64, i%3, key))
	}
	records = append(records, UsageRecord{QuoteRequest: QuoteRequest{Usage: core.Usage{Language: "py"}}}) // no tenant
	body, err := EncodeUsageStream(WireFrames, records)
	if err != nil {
		t.Fatal(err)
	}

	responses := map[int][]byte{}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		_, ts := newTestServer(t, Config{})
		raw, status := postBodyRaw(t, ts.URL, "pipe-run", ContentTypeFrames, body)
		runtime.GOMAXPROCS(old)
		if status != http.StatusOK {
			t.Fatalf("GOMAXPROCS=%d status = %d: %s", procs, status, raw)
		}
		responses[procs] = raw
	}
	if !bytes.Equal(responses[1], responses[4]) {
		t.Fatalf("pipelined response diverged from serial:\n serial:    %s\n pipelined: %s", responses[1], responses[4])
	}
}

// TestIngestSteadyStateAllocs hammers both wire formats with error-heavy
// streams and pins their steady-state allocation behaviour: the binary path
// allocates far less than one object per record, and the NDJSON error paths
// return every pooled line buffer (a pool leak shows up here as allocations
// growing with line count).
func TestIngestSteadyStateAllocs(t *testing.T) {
	srv, err := New(Config{Calibration: apitest.Calibration()})
	if err != nil {
		t.Fatal(err)
	}
	post := func(contentType string, body []byte) UsageStreamResponse {
		req := httptest.NewRequest(http.MethodPost, "/v3/usage", bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		var out UsageStreamResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	const lines = 256
	var frames []byte
	for i := 0; i < lines; i++ {
		rec := frameRecord(fmt.Sprintf("t%d", i%8), 128+(i%8)*64, 0, "")
		frames = AppendUsageFrame(frames, &rec)
	}
	post(ContentTypeFrames, frames) // warm the pools
	if avg := testing.AllocsPerRun(10, func() { post(ContentTypeFrames, frames) }); avg > lines/2 {
		t.Errorf("binary ingest allocates %.0f objects per %d-record stream (want ≪ 1/record)", avg, lines)
	}

	// The NDJSON hammer: malformed, tenantless and invalid lines take every
	// error return in priceLine. Allocations must stay proportional to the
	// JSON decode itself, not grow run over run (a linePool leak allocates
	// a fresh 4KB buffer per line on every later stream).
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		switch i % 4 {
		case 0:
			sb.WriteString("{not json")
		case 1:
			sb.WriteString(`{"language":"py","memoryMB":64}`) // no tenant
		case 2:
			sb.WriteString(`{"tenant":"h","minute":-1}`) // negative minute
		case 3:
			sb.WriteString(ndLine("h", 128, 0, ""))
		}
		sb.WriteByte('\n')
	}
	bad := []byte(sb.String())
	post(ContentTypeNDJSON, bad)
	first := testing.AllocsPerRun(5, func() { post(ContentTypeNDJSON, bad) })
	if out := post(ContentTypeNDJSON, bad); out.Lines != lines || out.Rejected != lines/4*3 {
		t.Fatalf("hammer stream = %+v", out)
	}
	later := testing.AllocsPerRun(5, func() { post(ContentTypeNDJSON, bad) })
	if later > first*1.5+lines/4 {
		t.Errorf("NDJSON error-path allocations grew: %.0f then %.0f per stream", first, later)
	}
}

// FuzzUsageFrameDecode throws arbitrary bytes at the binary ingest path.
// The decoder must never panic, must account every frame it reads in
// exactly one outcome bucket, and must decode any valid prefix identically
// on every pass — truncation or corruption rejects a frame or ends the
// stream, but never desyncs the offset into mis-billing.
func FuzzUsageFrameDecode(f *testing.F) {
	srv, err := New(Config{
		Calibration:    apitest.Calibration(),
		MaxBodyBytes:   fuzzMaxBodyBytes,
		MaxStreamLines: fuzzMaxStreamLines,
	})
	if err != nil {
		f.Fatal(err)
	}

	valid := func(records ...UsageRecord) []byte {
		var b []byte
		for i := range records {
			b = AppendUsageFrame(b, &records[i])
		}
		return b
	}
	one := frameRecord("acme", 128, 0, "")
	keyed := frameRecord("acme", 128, 0, "dup")
	f.Add(valid(one))
	f.Add(valid(one, keyed, keyed))
	f.Add(valid(one)[:5])                             // torn header
	f.Add(valid(one)[:frameHeaderLen+3])              // torn payload
	f.Add(append(valid(one), valid(one)...))          // back-to-back frames
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // oversized declared length
	corrupt := valid(one, one)
	corrupt[frameHeaderLen+4] ^= 0x42
	f.Add(corrupt) // CRC mismatch mid-stream

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v3/usage", bytes.NewReader(body))
		req.Header.Set("Content-Type", ContentTypeFrames)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		var out UsageStreamResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("undecodable response: %v", err)
		}
		if out.Lines != out.Accepted+out.Duplicates+out.Rejected+out.Dropped {
			t.Fatalf("frames %d != accepted %d + duplicates %d + rejected %d + dropped %d",
				out.Lines, out.Accepted, out.Duplicates, out.Rejected, out.Dropped)
		}
		last := 0
		for _, e := range out.Errors {
			if e.Line <= last {
				t.Fatalf("errors out of order: line %d after %d", e.Line, last)
			}
			last = e.Line
		}

		// Valid-prefix idempotence: two independent decode passes over the
		// same bytes agree exactly — records, rejects and terminal error.
		r1, j1, e1 := decodeAll(body, fuzzMaxBodyBytes)
		r2, j2, e2 := decodeAll(body, fuzzMaxBodyBytes)
		if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(j1, j2) || fmt.Sprint(e1) != fmt.Sprint(e2) {
			t.Fatalf("decode passes diverged:\n pass1: %v %v %v\n pass2: %v %v %v", r1, j1, e1, r2, j2, e2)
		}
		// And the offsets stayed in sync: the stream never yields more
		// frames than its length prefix structure allows.
		if got := len(r1) + len(j1); got > len(body)/frameHeaderLen+1 {
			t.Fatalf("%d frames out of %d bytes", got, len(body))
		}
	})
}

// TestAppendUsageFrameLength pins the header layout: the length prefix
// covers exactly the payload, so readers can skip frames without decoding.
func TestAppendUsageFrameLength(t *testing.T) {
	rec := frameRecord("acme", 128, 3, "k")
	body := AppendUsageFrame(nil, &rec)
	n := binary.LittleEndian.Uint32(body[:4])
	if int(n)+frameHeaderLen != len(body) {
		t.Fatalf("declared %d + header %d != frame %d", n, frameHeaderLen, len(body))
	}
	body = AppendUsageFrame(body, &rec)
	if len(body) != 2*(int(n)+frameHeaderLen) {
		t.Fatalf("append not self-delimiting: %d", len(body))
	}
}
