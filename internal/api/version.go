package api

import (
	"runtime/debug"
	"sync"
)

// VersionInfo identifies the running build: the VCS revision baked in by the
// Go toolchain, whether the working tree was dirty, and the toolchain that
// built it. In a cluster it is the only way to tell nodes apart from the
// outside — /healthz carries it, and pricingd -version prints it.
type VersionInfo struct {
	// Revision is the VCS commit the binary was built from; "" when the
	// build carried no VCS stamp (e.g. go test binaries or a non-git tree).
	Revision string `json:"revision,omitempty"`
	// CommitTime is the commit's RFC3339 timestamp, when stamped.
	CommitTime string `json:"commitTime,omitempty"`
	// Dirty reports uncommitted changes in the tree the build saw.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
	// Main is the main module's path@version, when available.
	Main string `json:"main,omitempty"`
}

// String renders the info for -version output.
func (v VersionInfo) String() string {
	rev := v.Revision
	if rev == "" {
		rev = "unknown"
	}
	s := rev
	if v.Dirty {
		s += "-dirty"
	}
	if v.CommitTime != "" {
		s += " (" + v.CommitTime + ")"
	}
	if v.GoVersion != "" {
		s += " " + v.GoVersion
	}
	return s
}

var versionOnce = sync.OnceValue(func() VersionInfo {
	info := VersionInfo{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	if bi.Main.Path != "" {
		info.Main = bi.Main.Path
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			info.Main += "@" + bi.Main.Version
		}
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.CommitTime = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
})

// Version reports the running binary's build identity, read once from
// runtime/debug.ReadBuildInfo.
func Version() VersionInfo {
	return versionOnce()
}
