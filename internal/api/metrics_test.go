package api

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/api/apitest"
)

func TestHealthzRequestMetrics(t *testing.T) {
	srv, err := New(Config{Calibration: apitest.Calibration()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	// Three good quotes, one bad (empty usage → 400), two tenant pages.
	good := QuoteRequest{Usage: usageAt("aes-py", 512, 1.2, 1.5, 2e5)}
	for i := 0; i < 3; i++ {
		if _, err := c.Quote(ctx, good); err != nil {
			t.Fatalf("quote %d: %v", i, err)
		}
	}
	if _, err := c.Quote(ctx, QuoteRequest{}); err == nil {
		t.Fatal("invalid quote accepted")
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Tenants(ctx, "", 10); err != nil {
			t.Fatal(err)
		}
	}

	var h HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		t.Fatal(err)
	}
	if h.Requests == nil {
		t.Fatal("healthz reports no request metrics")
	}
	if got := h.Requests.Endpoints["/v2/quote"]; got.Requests != 4 || got.Errors != 1 {
		t.Fatalf("/v2/quote counters = %+v, want 4 requests / 1 error", got)
	}
	if got := h.Requests.Endpoints["/v3/tenants"]; got.Requests != 2 || got.Errors != 0 {
		t.Fatalf("/v3/tenants counters = %+v, want 2 requests / 0 errors", got)
	}
	// The /healthz read counts itself, both in its own route counter and in
	// the in-flight gauge.
	if got := h.Requests.Endpoints["/healthz"]; got.Requests != 1 {
		t.Fatalf("/healthz counter = %+v, want 1 request", got)
	}
	if h.Requests.InFlight < 1 {
		t.Fatalf("inFlight = %d, want >= 1 (the health read itself)", h.Requests.InFlight)
	}
	// Untouched routes are present with zero counts, so dashboards see the
	// full surface without priming.
	if got, ok := h.Requests.Endpoints["/v3/usage"]; !ok || got.Requests != 0 {
		t.Fatalf("/v3/usage counter = %+v, want present and zero", got)
	}
}

func TestHealthzRequestMetricsConcurrent(t *testing.T) {
	srv, err := New(Config{Calibration: apitest.Calibration()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Quote(ctx, QuoteRequest{Usage: usageAt("aes-py", 256, 1.1, 1.3, 1e5)}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	var h HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		t.Fatal(err)
	}
	if got := h.Requests.Endpoints["/v2/quote"]; got.Requests != n || got.Errors != 0 {
		t.Fatalf("/v2/quote counters = %+v, want %d requests / 0 errors", got, n)
	}
}

// TestStatusWriterForwardsFlush pins the instrumentation wrapper's
// transparency: statusWriter must forward http.Flusher to the underlying
// writer, or instrumenting a streaming handler would silently buffer its
// response until the handler returns.
func TestStatusWriterForwardsFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	var w http.ResponseWriter = &statusWriter{ResponseWriter: rec, status: http.StatusOK}
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not expose http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}

// TestClientConnectionReuse pins the transport satellite: a burst of
// concurrent requests may dial up to one connection each, but a second
// burst must be served from the idle pool without dialling again.
// http.DefaultClient's 2-per-host idle cap — plus response bodies the old
// client never drained — used to open a fresh connection for nearly every
// request, which exhausts ephemeral ports under open-loop load.
func TestClientConnectionReuse(t *testing.T) {
	srv, err := New(Config{Calibration: apitest.Calibration()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(srv)
	var conns atomic.Int64
	ts.Config.ConnState = func(_ net.Conn, state http.ConnState) {
		if state == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	// A fresh transport, so other tests' idle conns can't help this one.
	c := NewClient(ts.URL)
	c.HTTPClient = &http.Client{Transport: DefaultTransport()}

	const burst = 24
	fire := func() {
		t.Helper()
		var wg sync.WaitGroup
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := c.Health(context.Background()); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}

	fire()
	after1 := conns.Load()
	if after1 == 0 || after1 > burst {
		t.Fatalf("first burst opened %d connections, want 1..%d", after1, burst)
	}
	fire()
	if after2 := conns.Load(); after2 != after1 {
		t.Fatalf("second burst dialled %d new connections (had %d idle); transport does not reuse",
			after2-after1, after1)
	}
}
