package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/ledger"
)

// Config parameterises a pricing server.
type Config struct {
	// Calibration is the initial table set (required).
	Calibration *core.Calibration
	// RateBase is the flat per-MB-second rate; 0 means 1 (the paper's
	// normalisation).
	RateBase float64
	// Sharing, when set, enables the litmus-method1 registry entry:
	// exclusive-core tables corrected by the pre-measured temporal-sharing
	// curve at CoRunnersPerCore.
	Sharing          *core.SharingOverhead
	CoRunnersPerCore int
	// MaxBodyBytes bounds request bodies; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxBatch bounds /v2/quotes batch sizes; 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxTenants bounds the billing ledger; 0 means DefaultMaxTenants.
	// Quotes naming a new tenant beyond the cap are rejected rather than
	// silently left unbilled, and drops are counted on /healthz.
	MaxTenants int
	// WindowMinutes is the statement window width in trace minutes; 0 means
	// 1 (ledger.DefaultWindowMinutes).
	WindowMinutes int
	// Shards is the ledger's lock-stripe count; parallel ingest paths
	// accrue concurrently across shards. The shard count never changes a
	// bill (see internal/ledger). 0 means DefaultShards.
	Shards int
	// MaxStreamLines bounds the physical lines read from one /v3/usage
	// stream; 0 means DefaultMaxStreamLines.
	MaxStreamLines int
	// DataDir, when non-empty, makes the billing ledger durable: accruals
	// are write-ahead-logged there, snapshots compact the logs, and a
	// restarted server recovers the exact pre-crash billing state (see
	// internal/ledger). Empty keeps the ledger in memory.
	DataDir string
	// Fsync selects the WAL sync policy: "always" (default — every
	// acknowledged accrual is on stable storage), "interval" or "never".
	Fsync string
	// SnapshotEvery triggers a compacting snapshot after that many
	// accruals; 0 selects the ledger default, negative disables automatic
	// snapshots. Ignored without DataDir.
	SnapshotEvery int
	// Ledger, when non-nil, is used as the billing store instead of building
	// one from the fields above (which are then ignored). Cluster followers
	// inject the standby ledger replication fills, so the API surface reads
	// the exact store the replication stream writes.
	Ledger *ledger.Ledger
	// Standby starts the server write-gated: every ingest path answers 503
	// ("standby") while reads — statements, listings, health — serve the
	// replicated state. Promote clears the gate.
	Standby bool
	// AdmissionRate, when > 0, enables per-tenant admission control on
	// /v3/usage: each tenant's records pass a token bucket whose refill
	// rate a forecaster re-sizes every AdmissionWindow from the tenant's
	// recent arrival rate (ceiling AdmissionRate records/sec). Over-limit
	// records are rejected with 429 + Retry-After, never billed. 0 disables
	// admission control entirely (no hot-path cost).
	AdmissionRate float64
	// AdmissionBurst is the token-bucket depth; 0 means 2×AdmissionRate.
	AdmissionBurst float64
	// AdmissionWindow is the forecaster's observation window; 0 means 2s.
	AdmissionWindow time.Duration
	// AdmissionBudget, when > 0, enables price-aware mode: tenants whose
	// projected cumulative bill exceeds it get their refill rate squeezed
	// first.
	AdmissionBudget float64
	// Admission, when non-nil, is used as the admission controller instead
	// of building one from the fields above (which are then ignored). Tests
	// inject manual-clock controllers here.
	Admission *admission.Controller
}

// Server is the reusable pricing service. It is an http.Handler; calibration
// tables can be hot-swapped while quotes are in flight, and all billing
// state lives in the ledger subsystem.
type Server struct {
	//litmus:unguarded frozen by New before the server is shared
	cfg Config
	//litmus:unguarded frozen by New before the server is shared
	mux *http.ServeMux

	// mu guards the swap-able pricing state below. tablesGen increments on
	// every swap; it backs the /v3/tables ETag.
	mu        sync.RWMutex
	cal       *core.Calibration
	models    *core.Models
	pricers   map[string]core.Pricer
	tablesGen uint64

	// ledger is the billing subsystem every API version accrues into; it is
	// concurrency-safe on its own and set once by New.
	//
	//litmus:unguarded frozen by New before the server is shared
	ledger *ledger.Ledger

	// standby gates every write path with a 503 while the server mirrors a
	// primary; Promote clears it. Reads always serve.
	standby atomic.Bool

	// admission is the per-tenant rate limiter on the /v3/usage hot path;
	// nil when admission control is disabled.
	//
	//litmus:unguarded frozen by New before the server is shared
	admission *admission.Controller

	// framePool recycles FrameReaders (binary /v3/usage): their bufio
	// window is sized from cfg.MaxBodyBytes, so the pool is per-server.
	framePool sync.Pool

	// metrics is the per-route request accounting /healthz reports; the map
	// is frozen by New, the values are atomics.
	//
	//litmus:unguarded frozen by New before the server is shared
	metrics *serverMetrics

	// startUnix is the process-relative start time backing /healthz uptime.
	//
	//litmus:unguarded frozen by New before the server is shared
	start time.Time
}

// New builds a server from cfg, fitting models from the calibration.
func New(cfg Config) (*Server, error) {
	if cfg.Calibration == nil {
		return nil, fmt.Errorf("api: config needs a calibration")
	}
	if cfg.RateBase == 0 {
		cfg.RateBase = 1
	}
	if cfg.RateBase < 0 {
		return nil, fmt.Errorf("api: negative rate base %v", cfg.RateBase)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = DefaultMaxTenants
	}
	if cfg.MaxStreamLines <= 0 {
		cfg.MaxStreamLines = DefaultMaxStreamLines
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	models, err := core.FitModels(cfg.Calibration)
	if err != nil {
		return nil, err
	}
	led := cfg.Ledger
	if led == nil {
		fsync, err := ledger.ParseFsyncMode(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		led, err = ledger.New(ledger.Config{
			MaxTenants:    cfg.MaxTenants,
			WindowMinutes: cfg.WindowMinutes,
			Shards:        cfg.Shards,
			Dir:           cfg.DataDir,
			Fsync:         fsync,
			SnapshotEvery: cfg.SnapshotEvery,
		})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:       cfg,
		cal:       cfg.Calibration,
		models:    models,
		tablesGen: 1,
		ledger:    led,
		start:     time.Now(),
	}
	s.standby.Store(cfg.Standby)
	s.admission = cfg.Admission
	if s.admission == nil && cfg.AdmissionRate > 0 {
		s.admission = admission.New(admission.Config{
			Rate:           cfg.AdmissionRate,
			Burst:          cfg.AdmissionBurst,
			ForecastWindow: cfg.AdmissionWindow,
			Budget:         cfg.AdmissionBudget,
			Stats:          led,
		})
	}
	s.pricers = s.buildPricers(models)
	s.metrics = &serverMetrics{routes: map[string]*routeMetrics{}}
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.metrics.instrument(pattern, h))
	}
	handle("/healthz", s.handleHealth)
	handle("/v1/tables", s.handleV1Tables)
	handle("/v1/quote", s.handleV1Quote)
	handle("/v2/quote", s.handleQuote)
	handle("/v2/quotes", s.handleQuoteBatch)
	handle("/v2/meter", s.handleMeter)
	handle("/v2/pricers", s.handlePricers)
	handle("/v2/tables", s.handleTables)
	handle("/v2/tenants/{tenant}/summary", s.handleTenantSummary)
	handle("/v3/usage", s.handleUsageStream)
	handle("/v3/tenants", s.handleTenantList)
	handle("/v3/tenants/{tenant}/statement", s.handleStatement)
	handle("/v3/tenants/{tenant}/forecast", s.handleForecast)
	handle("/v3/tables", s.handleTablesV3)
	s.mux = mux
	return s, nil
}

// --- request metrics ---------------------------------------------------------

// routeMetrics is one route's request accounting: total requests and error
// responses (status ≥ 400), both cumulative since startup.
type routeMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64
}

// serverMetrics is the cheap (two atomic adds per request) server-side
// request accounting /healthz exposes, so an external load generator can
// corroborate its client-side view against what the server actually saw.
type serverMetrics struct {
	// inFlight gauges requests currently inside a handler (a /healthz read
	// counts itself, so it reports ≥ 1).
	inFlight atomic.Int64
	// routes maps mux pattern → counters; frozen once the server is built.
	routes map[string]*routeMetrics
}

// instrument wraps a handler with the route's counters.
func (m *serverMetrics) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	rm := &routeMetrics{}
	m.routes[pattern] = rm
	return func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		rm.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		if sw.status >= 400 {
			rm.errors.Add(1)
		}
	}
}

// statusWriter captures the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader implements http.ResponseWriter.
func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush forwards http.Flusher to the wrapped writer: instrumenting a
// handler must not mask its ability to stream incrementally (a masked
// Flusher silently turns a streaming response into a buffered one).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestHealth renders the counters for /healthz.
func (m *serverMetrics) requestHealth() *RequestHealth {
	rh := &RequestHealth{
		InFlight:  m.inFlight.Load(),
		Endpoints: make(map[string]EndpointHealth, len(m.routes)),
	}
	for pattern, rm := range m.routes {
		rh.Endpoints[pattern] = EndpointHealth{
			Requests: rm.requests.Load(),
			Errors:   rm.errors.Load(),
		}
	}
	return rh
}

// DefaultPricer is the registry entry used when a request names none.
const DefaultPricer = "litmus"

// buildPricers constructs the named registry against one model set.
func (s *Server) buildPricers(models *core.Models) map[string]core.Pricer {
	p := map[string]core.Pricer{
		"commercial": core.Commercial{RateBase: s.cfg.RateBase},
		"litmus":     core.Litmus{Models: models, RateBase: s.cfg.RateBase},
	}
	if s.cfg.Sharing != nil {
		p["litmus-method1"] = core.Litmus{
			Models:           models,
			RateBase:         s.cfg.RateBase,
			Sharing:          s.cfg.Sharing,
			CoRunnersPerCore: s.cfg.CoRunnersPerCore,
		}
	}
	return p
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close flushes and closes the billing ledger: on a durable server every
// acknowledged accrual is synced to the WAL regardless of the fsync policy
// and the background snapshotter stops. The admission controller's
// forecaster ticker stops too. Call it after the HTTP server has drained.
// A volatile server's Close is a no-op. Idempotent.
func (s *Server) Close() error {
	if s.admission != nil {
		s.admission.Close()
	}
	return s.ledger.Close()
}

// Durability exposes the ledger's persistence stats (Enabled=false on a
// volatile server), so operators can log recovery outcomes at startup.
func (s *Server) Durability() ledger.DurabilityStats {
	return s.ledger.Durability()
}

// Standby reports whether the server is write-gated (see Config.Standby).
func (s *Server) Standby() bool { return s.standby.Load() }

// Promote clears the standby write gate: the server starts accepting
// accruals into the (now authoritative) replicated ledger. Idempotent; it
// returns whether this call performed the transition. The caller must stop
// replication into the ledger before promoting — two writers would fork the
// history.
func (s *Server) Promote() bool {
	return s.standby.CompareAndSwap(true, false)
}

// --- shared plumbing -------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("api: encoding response: %v", err)
	}
}

// v2Error writes the structured v2 error envelope.
func v2Error(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Err: Error{Status: status, Message: fmt.Sprintf(format, args...)}})
}

// decodeBody decodes a JSON request body under the configured size limit.
// It writes the error response itself and reports whether decoding
// succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			v2Error(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		v2Error(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.ledger.Stats()
	shards := make([]ShardHealth, len(st.Shards))
	for i, ss := range st.Shards {
		shards[i] = ShardHealth{Tenants: ss.Tenants, Keys: ss.KeysTracked}
	}
	var durability *DurabilityHealth
	if d := s.ledger.Durability(); d.Enabled {
		durability = &DurabilityHealth{
			Dir:               d.Dir,
			Fsync:             d.Fsync,
			WALBytes:          d.WALBytes,
			WALRecords:        d.WALRecords,
			Syncs:             d.Syncs,
			Snapshots:         d.Snapshots,
			LastSnapshotGen:   d.LastSnapshotGen,
			LastSnapshotUnix:  d.LastSnapshotUnix,
			LastSnapshotError: d.LastSnapshotError,
			LastSyncError:     d.LastSyncError,
			Recovery:          d.Recovery,
		}
	}
	var adm *AdmissionHealth
	if s.admission != nil {
		snap := s.admission.Snapshot()
		adm = &AdmissionHealth{
			RatePerSec: snap.RatePerSec,
			Burst:      snap.Burst,
			WindowSec:  snap.WindowSec,
			Budget:     snap.Budget,
			Admitted:   snap.Admitted,
			Throttled:  snap.Throttled,
		}
		for _, t := range snap.Tenants {
			adm.Tenants = append(adm.Tenants, TenantAdmissionHealth{
				Tenant:        t.Tenant,
				RefillPerSec:  t.RefillPerSec,
				ObservedRate:  t.ObservedRate,
				ForecastRate:  t.ForecastRate,
				ForecastError: t.ForecastError,
				Admitted:      t.Admitted,
				Throttled:     t.Throttled,
				ProjectedBill: t.ProjectedBill,
				Squeezed:      t.Squeezed,
			})
		}
	}
	v := Version()
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:                true,
		Standby:           s.standby.Load(),
		Version:           &v,
		UptimeSec:         int64(time.Since(s.start) / time.Second),
		Tenants:           st.Tenants,
		MaxTenants:        st.MaxTenants,
		Accrued:           st.Accrued,
		DroppedAccruals:   st.Dropped,
		DuplicateAccruals: st.Duplicates,
		IdempotencyKeys:   st.KeysTracked,
		KeysEvicted:       st.KeysEvicted,
		Shards:            len(st.Shards),
		ShardHealth:       shards,
		TablesETag:        s.tablesETag(),
		Durability:        durability,
		Requests:          s.metrics.requestHealth(),
		Admission:         adm,
	})
}

// --- GET /v3/tenants/{tenant}/forecast ---------------------------------------

// forecastHistoryWindows bounds the ledger windows echoed on a forecast
// read: the recent accrual history the projection is grounded in, not the
// tenant's whole statement.
const forecastHistoryWindows = 8

// handleForecast serves the admission controller's next-window view of one
// tenant: observed vs predicted arrival rate, the live refill rate, and the
// tenant's recent ledger windows. 404s when admission control is disabled
// or the controller has never seen the tenant.
func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		v2Error(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.admission == nil {
		v2Error(w, http.StatusNotFound, "admission control disabled: no forecasts (-admission-rate 0)")
		return
	}
	tenant := r.PathValue("tenant")
	fc, ok := s.admission.Forecast(tenant)
	if !ok {
		v2Error(w, http.StatusNotFound, "no admission state for tenant %q", tenant)
		return
	}
	resp := ForecastResponse{
		Tenant:        fc.Tenant,
		WindowSec:     fc.WindowSec,
		ObservedRate:  fc.ObservedRate,
		ForecastRate:  fc.ForecastRate,
		ForecastError: fc.ForecastError,
		RefillPerSec:  fc.RefillPerSec,
		Burst:         fc.Burst,
		Admitted:      fc.Admitted,
		Throttled:     fc.Throttled,
		ProjectedBill: fc.ProjectedBill,
		Budget:        fc.Budget,
		Squeezed:      fc.Squeezed,
	}
	if stats, ok := s.ledger.WindowStats(tenant, forecastHistoryWindows); ok {
		for _, ws := range stats {
			resp.Windows = append(resp.Windows, StatementLine{
				Window:      ws.Window,
				StartMinute: ws.StartMinute,
				Invocations: ws.Invocations,
				Commercial:  ws.Commercial,
				Billed:      ws.Billed,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /v2/quote and /v2/quotes ----------------------------------------------

// snapshot returns the pricer registry of one table generation. Models and
// pricers are immutable once built, so callers can price against a snapshot
// without holding the lock — and a whole batch prices against a single
// generation even if tables are swapped mid-flight.
func (s *Server) snapshot() map[string]core.Pricer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pricers
}

// priceOne prices one request through the given registry snapshot — pure
// pricing, no accrual. It returns a structured error instead of writing, so
// the batch and stream handlers can embed failures inline.
func (s *Server) priceOne(pricers map[string]core.Pricer, req QuoteRequest) (*QuoteResponse, *Error) {
	resp := new(QuoteResponse)
	if apiErr := s.priceOneInto(pricers, req, resp); apiErr != nil {
		return nil, apiErr
	}
	return resp, nil
}

// priceOneInto prices into a caller-owned response so the stream collectors
// can pool and reuse QuoteResponse values. Every field is overwritten on
// success; on error the response contents are undefined.
func (s *Server) priceOneInto(pricers map[string]core.Pricer, req QuoteRequest, out *QuoteResponse) *Error {
	if err := req.Usage.Validate(); err != nil {
		return &Error{Status: http.StatusBadRequest, Message: err.Error()}
	}
	name := req.Pricer
	if name == "" {
		name = DefaultPricer
	}
	pricer, ok := pricers[name]
	if !ok {
		return &Error{Status: http.StatusBadRequest, Message: fmt.Sprintf("unknown pricer %q", name)}
	}
	q, err := pricer.Quote(req.Usage)
	if err != nil {
		return &Error{Status: http.StatusBadRequest, Message: err.Error()}
	}
	*out = QuoteResponse{
		Abbr:       q.Abbr,
		Tenant:     req.Tenant,
		Pricer:     name,
		Commercial: q.Commercial,
		Price:      q.Price,
		Discount:   q.Discount(),
		PPrivate:   q.PPrivate,
		PShared:    q.PShared,
		RPrivate:   q.RPrivate,
		RShared:    q.RShared,
		Estimate: EstimateBody{
			PrivSlow:   q.Estimate.PrivSlow,
			SharedSlow: q.Estimate.SharedSlow,
			TotalSlow:  q.Estimate.TotalSlow,
			Weight:     q.Estimate.Weight,
		},
	}
	return nil
}

// pricerMemo caches the last registry hit for one stream (or one pipeline
// worker): nearly every record in a stream names the same pricer — usually
// none at all, meaning DefaultPricer — so the per-record map probe collapses
// to a string compare. Only valid against a single pricers snapshot; never
// share one memo across snapshots.
type pricerMemo struct {
	name   string
	pricer core.Pricer
}

// priceForStream prices one usage record without materialising a
// QuoteResponse: the stream response reports counters and tenant summaries,
// never per-line quotes, so the collectors only need what the ledger entry
// carries. Validation and pricing are exactly priceOneInto's — same order,
// same error wording — minus the response assembly.
func (s *Server) priceForStream(pricers map[string]core.Pricer, memo *pricerMemo, req *QuoteRequest) (string, float64, float64, *Error) {
	if err := req.Usage.Validate(); err != nil {
		return "", 0, 0, &Error{Status: http.StatusBadRequest, Message: err.Error()}
	}
	name := req.Pricer
	if name == "" {
		name = DefaultPricer
	}
	pricer := memo.pricer
	if pricer == nil || name != memo.name {
		var ok bool
		pricer, ok = pricers[name]
		if !ok {
			return "", 0, 0, &Error{Status: http.StatusBadRequest, Message: fmt.Sprintf("unknown pricer %q", name)}
		}
		memo.name, memo.pricer = name, pricer
	}
	q, err := pricer.Quote(req.Usage)
	if err != nil {
		return "", 0, 0, &Error{Status: http.StatusBadRequest, Message: err.Error()}
	}
	return name, q.Commercial, q.Price, nil
}

// priceAndAccrue prices one request and, when it names a tenant, bills it
// through the ledger at the given trace minute under the given idempotency
// key (empty disables dedup). Every API version bills through this path, so
// v1, v2 and v3 cannot diverge. A ledger drop (tenant cap) comes back as a
// 503 error; a duplicate comes back priced with outcome ledger.Duplicate
// and nothing billed.
func (s *Server) priceAndAccrue(pricers map[string]core.Pricer, req QuoteRequest, minute int, key string) (*QuoteResponse, ledger.Outcome, *Error) {
	resp, apiErr := s.priceOne(pricers, req)
	if apiErr != nil {
		return nil, ledger.Dropped, apiErr
	}
	if req.Tenant == "" {
		return resp, ledger.Accrued, nil
	}
	outcome, apiErr := s.accrue(resp, req.Tenant, minute, key)
	if apiErr != nil {
		return nil, ledger.Dropped, apiErr
	}
	return resp, outcome, nil
}

// accrue bills one priced quote to a tenant's ledger. It is the only place
// that builds a ledger entry from a quote, so every ingest path — /v1 and
// /v2 quotes, /v2 meter batches, the /v3 stream collector — bills
// identically. A drop at the tenant cap comes back as a 503.
//
//litmus:allow-accrue priceAndAccrue's delegate: the one builder of ledger entries
func (s *Server) accrue(resp *QuoteResponse, tenant string, minute int, key string) (ledger.Outcome, *Error) {
	// The standby gate lives here — the single accrual funnel — so no ingest
	// path can bill into a ledger that replication owns. Clients retry
	// against the primary (or wait for promotion); nothing is billed.
	if s.standby.Load() {
		return ledger.Dropped, &Error{Status: http.StatusServiceUnavailable,
			Message: "standby: writes go to the primary"}
	}
	outcome, err := s.ledger.Accrue(ledger.Entry{
		Tenant:     tenant,
		Pricer:     resp.Pricer,
		Minute:     minute,
		Commercial: resp.Commercial,
		Price:      resp.Price,
		Key:        key,
	})
	return s.mapAccrual(outcome, err)
}

// mapAccrual translates a ledger accrual outcome into the API's terms. It is
// shared by the per-record path above and the stream collectors' batched
// path, so both report identical statuses and wording.
func (s *Server) mapAccrual(outcome ledger.Outcome, err error) (ledger.Outcome, *Error) {
	if err != nil {
		// A failing disk is the service's fault, not the request's.
		if errors.Is(err, ledger.ErrDurability) {
			return ledger.Dropped, &Error{Status: http.StatusServiceUnavailable, Message: err.Error()}
		}
		return ledger.Dropped, &Error{Status: http.StatusBadRequest, Message: err.Error()}
	}
	if outcome == ledger.Dropped {
		return ledger.Dropped, &Error{Status: http.StatusServiceUnavailable,
			Message: fmt.Sprintf("tenant ledger full (%d tenants); quote not billed", s.cfg.MaxTenants)}
	}
	return outcome, nil
}

func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		v2Error(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QuoteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp, _, apiErr := s.priceAndAccrue(s.snapshot(), req, 0, "")
	if apiErr != nil {
		writeJSON(w, apiErr.Status, errorEnvelope{Err: *apiErr})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuoteBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		v2Error(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Quotes) == 0 {
		v2Error(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Quotes) > s.cfg.MaxBatch {
		v2Error(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Quotes), s.cfg.MaxBatch)
		return
	}

	items := make([]BatchItem, len(req.Quotes))
	s.priceBatch(req.Quotes, func(i int, resp *QuoteResponse, apiErr *Error) {
		items[i] = BatchItem{Quote: resp, Error: apiErr}
	})
	writeJSON(w, http.StatusOK, BatchResponse{Quotes: items})
}

// priceBatch prices a request slice concurrently against one registry
// snapshot, so every item sees the same table generation, accrues
// tenant-carrying items through the ledger, and delivers result i through
// each(i, …). Distinct indices may be delivered concurrently; each must not
// touch shared state beyond its own slot.
func (s *Server) priceBatch(reqs []QuoteRequest, each func(i int, resp *QuoteResponse, apiErr *Error)) {
	pricers := s.snapshot()
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, q := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q QuoteRequest) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, _, apiErr := s.priceAndAccrue(pricers, q, 0, "")
			each(i, resp, apiErr)
		}(i, q)
	}
	wg.Wait()
}

// --- /v2/meter --------------------------------------------------------------

// handleMeter accrues a usage batch into the tenant ledger: the streaming
// ingest path for external platforms (and cmd/fleetsim's remote mode).
// Records are priced through the same priceOne path as quotes — metering
// never changes a price — and rejected records come back as per-item errors
// while the rest of the batch accrues.
func (s *Server) handleMeter(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		v2Error(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req MeterRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		v2Error(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Records) > s.cfg.MaxBatch {
		v2Error(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Records), s.cfg.MaxBatch)
		return
	}

	// Reject tenantless records up front (they must not be priced, let
	// alone accrued), then price the rest through the shared batch path.
	items := make([]MeterItem, len(req.Records))
	idxs := make([]int, 0, len(req.Records))
	billable := make([]QuoteRequest, 0, len(req.Records))
	for i, rec := range req.Records {
		if rec.Tenant == "" {
			items[i] = MeterItem{Error: &Error{
				Status:  http.StatusBadRequest,
				Message: "metering requires a tenant",
			}}
			continue
		}
		idxs = append(idxs, i)
		billable = append(billable, rec)
	}
	s.priceBatch(billable, func(j int, resp *QuoteResponse, apiErr *Error) {
		i := idxs[j]
		if apiErr != nil {
			items[i] = MeterItem{Tenant: billable[j].Tenant, Error: apiErr}
			return
		}
		items[i] = MeterItem{
			Tenant:     resp.Tenant,
			Pricer:     resp.Pricer,
			Commercial: resp.Commercial,
			Price:      resp.Price,
		}
	})

	resp := MeterResponse{Items: items}
	touched := map[string]bool{}
	for _, item := range items {
		if item.Error != nil {
			resp.Rejected++
			continue
		}
		resp.Accepted++
		touched[item.Tenant] = true
	}
	names := make([]string, 0, len(touched))
	for name := range touched {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if sum, ok := s.summaryOf(name); ok {
			resp.Tenants = append(resp.Tenants, sum)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /v2/pricers ------------------------------------------------------------

// pricerDescriptions documents the registry entries buildPricers can
// construct; the /v2/pricers listing is derived from the live registry so
// the two cannot drift.
var pricerDescriptions = map[string]string{
	"commercial":     "pay-as-you-go: flat rate, congestion billed to the tenant",
	"litmus":         "per-component congestion discount from the invocation's Litmus test",
	"litmus-method1": "litmus with exclusive-core tables corrected by the temporal-sharing curve",
}

func (s *Server) handlePricers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		v2Error(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	pricers := s.snapshot()
	names := make([]string, 0, len(pricers))
	for name := range pricers {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]PricerInfo, 0, len(names))
	for _, name := range names {
		infos = append(infos, PricerInfo{
			Name:        name,
			Description: pricerDescriptions[name],
			Default:     name == DefaultPricer,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

// --- /v2/tables and the table version ---------------------------------------

// etagLocked renders the table version as a strong ETag; callers hold mu.
//
//litmus:guarded-by caller holds mu
func (s *Server) etagLocked() string { return fmt.Sprintf("%q", fmt.Sprintf("tables-%d", s.tablesGen)) }

// tablesETag returns the current table-version ETag.
func (s *Server) tablesETag() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.etagLocked()
}

// swapTables installs a validated calibration and its fitted models when
// ifMatch is empty, "*", or names the current table version. The compare
// and the swap happen under one critical section, so two concurrent swaps
// that both read the same version cannot both win (no lost updates). It
// returns the resulting ETag and whether the swap happened.
func (s *Server) swapTables(cal *core.Calibration, models *core.Models, ifMatch string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ifMatch != "" && ifMatch != "*" && ifMatch != s.etagLocked() {
		return s.etagLocked(), false
	}
	s.cal = cal
	s.models = models
	s.pricers = s.buildPricers(models)
	s.tablesGen++
	return s.etagLocked(), true
}

// decodeTables decodes and validates a calibration body, fitting its
// models; it writes the error response itself on failure.
func (s *Server) decodeTables(w http.ResponseWriter, r *http.Request) (*core.Calibration, *core.Models, bool) {
	var cal core.Calibration
	if !s.decodeBody(w, r, &cal) {
		return nil, nil, false
	}
	if err := cal.Validate(); err != nil {
		v2Error(w, http.StatusBadRequest, "invalid tables: %v", err)
		return nil, nil, false
	}
	models, err := core.FitModels(&cal)
	if err != nil {
		v2Error(w, http.StatusBadRequest, "fitting models: %v", err)
		return nil, nil, false
	}
	return &cal, models, true
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		cal := s.cal
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, cal)
	case http.MethodPost:
		cal, models, ok := s.decodeTables(w, r)
		if !ok {
			return
		}
		// v2 swaps are unconditional (last write wins); /v3 adds If-Match.
		s.swapTables(cal, models, "")
		writeJSON(w, http.StatusOK, TablesStatus{
			Machine:      cal.Machine,
			SharePerCore: cal.SharePerCore,
			Generators:   len(cal.Generators),
			Languages:    len(cal.SoloStartups),
		})
	default:
		v2Error(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// --- /v2/tenants/{tenant}/summary -------------------------------------------

// wireSummary converts a ledger summary to the wire shape.
func wireSummary(sum ledger.Summary) TenantSummary {
	return TenantSummary{
		Tenant:      sum.Tenant,
		Invocations: sum.Invocations,
		Commercial:  sum.Commercial,
		Billed:      sum.Billed,
		Discount:    sum.Discount,
	}
}

// summaryOf reads one tenant's ledger summary.
func (s *Server) summaryOf(tenant string) (TenantSummary, bool) {
	sum, ok := s.ledger.Summary(tenant)
	if !ok {
		return TenantSummary{}, false
	}
	return wireSummary(sum), true
}

func (s *Server) handleTenantSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		v2Error(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	tenant := r.PathValue("tenant")
	sum, ok := s.summaryOf(tenant)
	if !ok {
		v2Error(w, http.StatusNotFound, "no ledger for tenant %q", tenant)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}
