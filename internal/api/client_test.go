package api

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/api/apitest"
	"repro/internal/core"
)

func newClientPair(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Calibration: apitest.Calibration()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), ts
}

// usageAt fabricates a usage at the given startup slowdowns.
func usageAt(abbr string, mem int, privSlow, sharedSlow, misses float64) core.Usage {
	return core.Usage{
		Abbr:     abbr,
		Language: "py",
		MemoryMB: mem,
		TPrivate: 0.08,
		TShared:  0.02,
		Probe: &core.ProbeUsage{
			TPrivate:        apitest.SoloTPrivate * privSlow,
			TShared:         apitest.SoloTShared * sharedSlow,
			MachineL3Misses: misses,
		},
	}
}

func TestClientQuote(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	q, err := c.Quote(ctx, QuoteRequest{
		Usage:  usageAt("pager-py", 512, 1.3, 1.9, 1.2e7),
		Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Abbr != "pager-py" || q.Pricer != "litmus" || q.Discount <= 0 {
		t.Errorf("quote = %+v", q)
	}

	sum, err := c.TenantSummary(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Invocations != 1 || math.Abs(sum.Billed-q.Price) > 1e-9 {
		t.Errorf("summary = %+v, want the one quote", sum)
	}
}

func TestClientQuoteError(t *testing.T) {
	c, _ := newClientPair(t)
	_, err := c.Quote(context.Background(), QuoteRequest{
		Usage: core.Usage{Language: "rs", MemoryMB: 1, TPrivate: 1},
	})
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *api.Error", err)
	}
	if apiErr.Status != http.StatusBadRequest {
		t.Errorf("status = %d", apiErr.Status)
	}

	_, err = c.TenantSummary(context.Background(), "ghost")
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown tenant err = %v", err)
	}
}

func TestClientQuoteBatch(t *testing.T) {
	c, _ := newClientPair(t)
	reqs := []QuoteRequest{
		{Usage: usageAt("a", 128, 1.3, 1.9, 1.2e7)},
		{Usage: usageAt("bad", 0, 1.3, 1.9, 1.2e7)}, // invalid: zero memory
		{Usage: usageAt("c", 512, 1.3, 1.9, 1.2e7)},
	}
	items, err := c.QuoteBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items", len(items))
	}
	if items[0].Quote == nil || items[0].Quote.Abbr != "a" {
		t.Errorf("item 0 = %+v", items[0])
	}
	if items[1].Error == nil || items[1].Quote != nil {
		t.Errorf("item 1 must fail inline, got %+v", items[1])
	}
	if items[2].Quote == nil || items[2].Quote.Abbr != "c" {
		t.Errorf("item 2 = %+v", items[2])
	}
	// Identical measurements: price scales with memory.
	if items[0].Quote != nil && items[2].Quote != nil {
		ratio := items[2].Quote.Price / items[0].Quote.Price
		if math.Abs(ratio-4) > 1e-6 {
			t.Errorf("price ratio = %v, want 4 (memory 512/128)", ratio)
		}
	}
}

func TestClientPricersAndTables(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()
	infos, err := c.Pricers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Errorf("pricers = %+v", infos)
	}

	cal, err := c.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Machine != "fixed" {
		t.Errorf("tables machine = %q", cal.Machine)
	}

	cal.Machine = "client-swapped"
	status, err := c.SwapTables(ctx, cal)
	if err != nil {
		t.Fatal(err)
	}
	if status.Machine != "client-swapped" {
		t.Errorf("swap status = %+v", status)
	}
	again, err := c.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again.Machine != "client-swapped" {
		t.Error("swap did not take effect")
	}
}

func TestClientMeterPartialBatch(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()

	resp, err := c.Meter(ctx, []QuoteRequest{
		{Usage: usageAt("pager-py", 512, 1.3, 1.9, 1.2e7), Tenant: "acme"},
		{Usage: usageAt("bad-py", 0, 1.3, 1.9, 1.2e7), Tenant: "acme"}, // invalid memory
		{Usage: usageAt("pager-py", 512, 1.3, 1.9, 1.2e7)},             // missing tenant
		{Usage: usageAt("pager-py", 256, 1.1, 1.2, 2e5), Tenant: "zeta", Pricer: "commercial"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Rejected != 2 {
		t.Fatalf("accepted %d rejected %d, want 2/2: %+v", resp.Accepted, resp.Rejected, resp)
	}
	if resp.Items[0].Error != nil || resp.Items[0].Price <= 0 {
		t.Errorf("item 0 = %+v", resp.Items[0])
	}
	if resp.Items[1].Error == nil || resp.Items[1].Error.Status != http.StatusBadRequest {
		t.Errorf("item 1 = %+v", resp.Items[1])
	}
	if resp.Items[2].Error == nil {
		t.Errorf("item 2 (no tenant) = %+v", resp.Items[2])
	}
	if resp.Items[3].Error != nil || resp.Items[3].Pricer != "commercial" {
		t.Errorf("item 3 = %+v", resp.Items[3])
	}
	if len(resp.Tenants) != 2 || resp.Tenants[0].Tenant != "acme" || resp.Tenants[1].Tenant != "zeta" {
		t.Fatalf("touched tenants = %+v", resp.Tenants)
	}

	// The accrued records are queryable through the summary endpoint.
	sum, err := c.TenantSummary(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Invocations != 1 {
		t.Errorf("acme accrued %d invocations, want 1", sum.Invocations)
	}
}

func TestClientMeterBatchErrors(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()

	// An empty batch is a call-level error, not a partial batch.
	_, err := c.Meter(ctx, nil)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty batch error = %v", err)
	}

	// A server that answers with the wrong item count is rejected.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"accepted": 1, "items": []}`))
	}))
	t.Cleanup(bad.Close)
	_, err = NewClient(bad.URL).Meter(ctx, []QuoteRequest{
		{Usage: usageAt("pager-py", 512, 1.3, 1.9, 1.2e7), Tenant: "t"},
	})
	if err == nil {
		t.Fatal("mismatched item count accepted")
	}
}
