package api

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api/apitest"
	"repro/internal/core"
)

func newClientPair(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Calibration: apitest.Calibration()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), ts
}

// usageAt fabricates a usage at the given startup slowdowns.
func usageAt(abbr string, mem int, privSlow, sharedSlow, misses float64) core.Usage {
	return core.Usage{
		Abbr:     abbr,
		Language: "py",
		MemoryMB: mem,
		TPrivate: 0.08,
		TShared:  0.02,
		Probe: &core.ProbeUsage{
			TPrivate:        apitest.SoloTPrivate * privSlow,
			TShared:         apitest.SoloTShared * sharedSlow,
			MachineL3Misses: misses,
		},
	}
}

func TestClientQuote(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	q, err := c.Quote(ctx, QuoteRequest{
		Usage:  usageAt("pager-py", 512, 1.3, 1.9, 1.2e7),
		Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Abbr != "pager-py" || q.Pricer != "litmus" || q.Discount <= 0 {
		t.Errorf("quote = %+v", q)
	}

	sum, err := c.TenantSummary(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Invocations != 1 || math.Abs(sum.Billed-q.Price) > 1e-9 {
		t.Errorf("summary = %+v, want the one quote", sum)
	}
}

func TestClientQuoteError(t *testing.T) {
	c, _ := newClientPair(t)
	_, err := c.Quote(context.Background(), QuoteRequest{
		Usage: core.Usage{Language: "rs", MemoryMB: 1, TPrivate: 1},
	})
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *api.Error", err)
	}
	if apiErr.Status != http.StatusBadRequest {
		t.Errorf("status = %d", apiErr.Status)
	}

	_, err = c.TenantSummary(context.Background(), "ghost")
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown tenant err = %v", err)
	}
}

func TestClientQuoteBatch(t *testing.T) {
	c, _ := newClientPair(t)
	reqs := []QuoteRequest{
		{Usage: usageAt("a", 128, 1.3, 1.9, 1.2e7)},
		{Usage: usageAt("bad", 0, 1.3, 1.9, 1.2e7)}, // invalid: zero memory
		{Usage: usageAt("c", 512, 1.3, 1.9, 1.2e7)},
	}
	items, err := c.QuoteBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items", len(items))
	}
	if items[0].Quote == nil || items[0].Quote.Abbr != "a" {
		t.Errorf("item 0 = %+v", items[0])
	}
	if items[1].Error == nil || items[1].Quote != nil {
		t.Errorf("item 1 must fail inline, got %+v", items[1])
	}
	if items[2].Quote == nil || items[2].Quote.Abbr != "c" {
		t.Errorf("item 2 = %+v", items[2])
	}
	// Identical measurements: price scales with memory.
	if items[0].Quote != nil && items[2].Quote != nil {
		ratio := items[2].Quote.Price / items[0].Quote.Price
		if math.Abs(ratio-4) > 1e-6 {
			t.Errorf("price ratio = %v, want 4 (memory 512/128)", ratio)
		}
	}
}

func TestClientPricersAndTables(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()
	infos, err := c.Pricers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Errorf("pricers = %+v", infos)
	}

	cal, err := c.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Machine != "fixed" {
		t.Errorf("tables machine = %q", cal.Machine)
	}

	cal.Machine = "client-swapped"
	status, err := c.SwapTables(ctx, cal)
	if err != nil {
		t.Fatal(err)
	}
	if status.Machine != "client-swapped" {
		t.Errorf("swap status = %+v", status)
	}
	again, err := c.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again.Machine != "client-swapped" {
		t.Error("swap did not take effect")
	}
}

func TestClientMeterPartialBatch(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()

	resp, err := c.Meter(ctx, []QuoteRequest{
		{Usage: usageAt("pager-py", 512, 1.3, 1.9, 1.2e7), Tenant: "acme"},
		{Usage: usageAt("bad-py", 0, 1.3, 1.9, 1.2e7), Tenant: "acme"}, // invalid memory
		{Usage: usageAt("pager-py", 512, 1.3, 1.9, 1.2e7)},             // missing tenant
		{Usage: usageAt("pager-py", 256, 1.1, 1.2, 2e5), Tenant: "zeta", Pricer: "commercial"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Rejected != 2 {
		t.Fatalf("accepted %d rejected %d, want 2/2: %+v", resp.Accepted, resp.Rejected, resp)
	}
	if resp.Items[0].Error != nil || resp.Items[0].Price <= 0 {
		t.Errorf("item 0 = %+v", resp.Items[0])
	}
	if resp.Items[1].Error == nil || resp.Items[1].Error.Status != http.StatusBadRequest {
		t.Errorf("item 1 = %+v", resp.Items[1])
	}
	if resp.Items[2].Error == nil {
		t.Errorf("item 2 (no tenant) = %+v", resp.Items[2])
	}
	if resp.Items[3].Error != nil || resp.Items[3].Pricer != "commercial" {
		t.Errorf("item 3 = %+v", resp.Items[3])
	}
	if len(resp.Tenants) != 2 || resp.Tenants[0].Tenant != "acme" || resp.Tenants[1].Tenant != "zeta" {
		t.Fatalf("touched tenants = %+v", resp.Tenants)
	}

	// The accrued records are queryable through the summary endpoint.
	sum, err := c.TenantSummary(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Invocations != 1 {
		t.Errorf("acme accrued %d invocations, want 1", sum.Invocations)
	}
}

func TestClientStreamUsageAndStatement(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()

	records := []UsageRecord{
		{QuoteRequest: QuoteRequest{Usage: usageAt("a", 128, 1.3, 1.9, 1.2e7), Tenant: "acme"}, Minute: 0},
		{QuoteRequest: QuoteRequest{Usage: usageAt("b", 256, 1.3, 1.9, 1.2e7), Tenant: "acme"}, Minute: 1},
		{QuoteRequest: QuoteRequest{Usage: usageAt("c", 512, 1.3, 1.9, 1.2e7), Tenant: "zeta"}, Minute: 0},
	}
	resp, err := c.StreamUsage(ctx, "run-1", records)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 3 || resp.Lines != 3 {
		t.Fatalf("stream = %+v", resp)
	}

	// Retrying the identical call under the same key is a no-op.
	again, err := c.StreamUsage(ctx, "run-1", records)
	if err != nil {
		t.Fatal(err)
	}
	if again.Accepted != 0 || again.Duplicates != 3 {
		t.Fatalf("retry = %+v", again)
	}

	page, err := c.Tenants(ctx, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Tenants) != 1 || page.Tenants[0].Tenant != "acme" || page.NextCursor == "" {
		t.Fatalf("page 1 = %+v", page)
	}
	page2, err := c.Tenants(ctx, page.NextCursor, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(page2.Tenants) != 1 || page2.Tenants[0].Tenant != "zeta" || page2.NextCursor != "" {
		t.Fatalf("page 2 = %+v", page2)
	}

	st, err := c.Statement(ctx, "acme", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Invocations != 2 || len(st.Lines) != 2 {
		t.Fatalf("statement = %+v", st)
	}
	ranged, err := c.Statement(ctx, "acme", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ranged.Invocations != 1 || len(ranged.Lines) != 1 || ranged.Lines[0].StartMinute != 1 {
		t.Fatalf("ranged statement = %+v", ranged)
	}
	var apiErr *Error
	if _, err := c.Statement(ctx, "ghost", 0, -1); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown tenant statement err = %v", err)
	}
}

func TestClientSwapTablesIfMatch(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()

	cal, etag, err := c.TablesWithETag(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if etag == "" || cal.Machine != "fixed" {
		t.Fatalf("tables = %q, etag %q", cal.Machine, etag)
	}
	cal.Machine = "v3-swapped"
	status, etag2, err := c.SwapTablesIfMatch(ctx, cal, etag)
	if err != nil {
		t.Fatal(err)
	}
	if status.Machine != "v3-swapped" || etag2 == "" || etag2 == etag {
		t.Fatalf("swap = %+v, etag %q → %q", status, etag, etag2)
	}

	// The stale version now loses; the 412 carries the current version so
	// the caller can re-read and retry.
	cal.Machine = "loser"
	_, current, err := c.SwapTablesIfMatch(ctx, cal, etag)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusPreconditionFailed {
		t.Fatalf("stale swap err = %v", err)
	}
	if current != etag2 {
		t.Errorf("conflict reported version %q, want %q", current, etag2)
	}
	if active, _, err := c.TablesWithETag(ctx); err != nil || active.Machine != "v3-swapped" {
		t.Errorf("stale swap took effect: %v, %v", active.Machine, err)
	}
}

// --- failure modes -----------------------------------------------------------

func TestClientNonJSONErrorBody(t *testing.T) {
	for name, handler := range map[string]http.HandlerFunc{
		"plain text": func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "upstream exploded", http.StatusBadGateway)
		},
		"html": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/html")
			w.WriteHeader(http.StatusBadGateway)
			io.WriteString(w, "<html><body>502</body></html>")
		},
		"empty": func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusBadGateway)
		},
	} {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(handler)
			t.Cleanup(ts.Close)
			c := NewClient(ts.URL)
			_, err := c.Quote(context.Background(), QuoteRequest{Usage: usageAt("a", 128, 1.3, 1.9, 1.2e7)})
			var apiErr *Error
			if !errors.As(err, &apiErr) {
				t.Fatalf("err = %v, want *api.Error", err)
			}
			if apiErr.Status != http.StatusBadGateway {
				t.Errorf("status = %d", apiErr.Status)
			}
			// The raw body (trimmed) becomes the message; it must never be
			// mistaken for a JSON envelope.
			if name == "plain text" && apiErr.Message != "upstream exploded" {
				t.Errorf("message = %q", apiErr.Message)
			}
		})
	}
}

func TestClientContextCanceledMidStream(t *testing.T) {
	// The handler commits a 200 and half a body, then stalls until the
	// client goes away: cancellation must abort the decode, not hang.
	stalled := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"lines":`)
		w.(http.Flusher).Flush()
		close(stalled)
		<-r.Context().Done()
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-stalled
		cancel()
	}()
	_, err := c.StreamUsage(ctx, "", []UsageRecord{
		{QuoteRequest: QuoteRequest{Usage: usageAt("a", 128, 1.3, 1.9, 1.2e7), Tenant: "t"}},
	})
	if err == nil {
		t.Fatal("canceled stream succeeded")
	}
	if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("err = %v, want context cancellation", err)
	}
}

func TestClientServerClosedConnection(t *testing.T) {
	// Closed before any response: a transport error, not a hang.
	abrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		conn.Close()
	}))
	t.Cleanup(abrupt.Close)
	if _, err := NewClient(abrupt.URL).Pricers(context.Background()); err == nil {
		t.Error("closed connection produced a result")
	}

	// Closed mid-body after a committed 200: the truncated JSON must fail
	// decoding instead of yielding a zero-value response.
	truncated := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, rw, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		rw.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 100\r\n\r\n{\"accepted\": 1, \"it")
		rw.Flush()
		conn.Close()
	}))
	t.Cleanup(truncated.Close)
	_, err := NewClient(truncated.URL).Meter(context.Background(), []QuoteRequest{
		{Usage: usageAt("a", 128, 1.3, 1.9, 1.2e7), Tenant: "t"},
	})
	if err == nil || !strings.Contains(err.Error(), "decoding response") {
		t.Errorf("truncated body err = %v, want decode failure", err)
	}
}

// TestClientTenantsConnectionDrop: the connection dies mid-body on the
// paginated listing — after a committed 200 and half a page. The client
// must surface an error, never a short page a caller could mistake for the
// end of the listing (cluster merge-pagination trusts every per-node page).
func TestClientTenantsConnectionDrop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, rw, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		rw.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 200\r\n\r\n" +
			`{"tenants":[{"tenant":"acme","invocations":3`)
		rw.Flush()
		conn.Close()
	}))
	t.Cleanup(ts.Close)
	page, err := NewClient(ts.URL).Tenants(context.Background(), "", 10)
	if err == nil {
		t.Fatalf("dropped connection yielded a page: %+v", page)
	}
	if !strings.Contains(err.Error(), "decoding response") {
		t.Errorf("err = %v, want decode failure", err)
	}
}

// TestClientStatementConnectionDrop: same drop on the windowed statement —
// a truncated bill must fail loudly, not come back zero-valued.
func TestClientStatementConnectionDrop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, rw, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		rw.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 150\r\n\r\n" +
			`{"tenant":"acme","billed":12.5,"windows":[{"fromMinute":0`)
		rw.Flush()
		conn.Close()
	}))
	t.Cleanup(ts.Close)
	stmt, err := NewClient(ts.URL).Statement(context.Background(), "acme", 0, -1)
	if err == nil {
		t.Fatalf("dropped connection yielded a statement: %+v", stmt)
	}
	if !strings.Contains(err.Error(), "decoding response") {
		t.Errorf("err = %v, want decode failure", err)
	}
}

func TestClientMeterBatchErrors(t *testing.T) {
	c, _ := newClientPair(t)
	ctx := context.Background()

	// An empty batch is a call-level error, not a partial batch.
	_, err := c.Meter(ctx, nil)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty batch error = %v", err)
	}

	// A server that answers with the wrong item count is rejected.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"accepted": 1, "items": []}`))
	}))
	t.Cleanup(bad.Close)
	_, err = NewClient(bad.URL).Meter(ctx, []QuoteRequest{
		{Usage: usageAt("pager-py", 512, 1.3, 1.9, 1.2e7), Tenant: "t"},
	})
	if err == nil {
		t.Fatal("mismatched item count accepted")
	}
}
