package api

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api/apitest"
)

// benchServer builds a server on the synthetic fixture for the ingest
// hot-path benchmarks (no network: requests go straight to ServeHTTP).
func benchServer(b *testing.B) *Server {
	b.Helper()
	srv, err := New(Config{Calibration: apitest.Calibration()})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// benchRecord renders one congested usage body for tenant t.
func benchRecord(tenant string, mem int) string {
	return fmt.Sprintf(`{"tenant":%q,"language":"py","memoryMB":%d,"tPrivate":0.08,"tShared":0.02,"probe":{"tPrivate":%g,"tShared":%g,"machineL3Misses":1.2e7}}`,
		tenant, mem, apitest.SoloTPrivate*1.3, apitest.SoloTShared*1.9)
}

// BenchmarkQuoteBatch measures the concurrent /v2/quotes pricing path at a
// fixed batch size.
func BenchmarkQuoteBatch(b *testing.B) {
	srv := benchServer(b)
	const batch = 64
	var items []string
	for i := 0; i < batch; i++ {
		items = append(items, benchRecord(fmt.Sprintf("t%d", i%8), 128+64*(i%8)))
	}
	body := []byte(`{"quotes":[` + strings.Join(items, ",") + `]}`)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v2/quotes", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "quotes/s")
}

// BenchmarkUsageStream measures the /v3/usage NDJSON ingest loop — decode,
// price, accrue — at a stream size far beyond the /v2 batch cap.
func BenchmarkUsageStream(b *testing.B) {
	srv := benchServer(b)
	const lines = 512
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		sb.WriteString(benchRecord(fmt.Sprintf("t%d", i%8), 128+64*(i%8)))
		sb.WriteByte('\n')
	}
	body := []byte(sb.String())
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v3/usage", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(float64(lines*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkUsageStreamSharded measures the parallel /v3/usage pipeline —
// worker-pool decode/price, sharded accrual — across ledger shard counts,
// with enough distinct tenants to spread the stripes. On a multi-core
// runner throughput should scale with shards until cores run out; the
// 1-shard case serializes every accrual behind one mutex.
func BenchmarkUsageStreamSharded(b *testing.B) {
	const lines = 2048
	const tenants = 64
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		sb.WriteString(benchRecord(fmt.Sprintf("t%02d", i%tenants), 128+64*(i%8)))
		sb.WriteByte('\n')
	}
	body := []byte(sb.String())
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := New(Config{Calibration: apitest.Calibration(), Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v3/usage", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
				}
			}
			b.ReportMetric(float64(lines*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
