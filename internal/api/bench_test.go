package api

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api/apitest"
	"repro/internal/core"
)

// benchServer builds a server on the synthetic fixture for the ingest
// hot-path benchmarks (no network: requests go straight to ServeHTTP).
func benchServer(b *testing.B) *Server {
	b.Helper()
	srv, err := New(Config{Calibration: apitest.Calibration()})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// benchRecord renders one congested usage body for tenant t.
func benchRecord(tenant string, mem int) string {
	return fmt.Sprintf(`{"tenant":%q,"language":"py","memoryMB":%d,"tPrivate":0.08,"tShared":0.02,"probe":{"tPrivate":%g,"tShared":%g,"machineL3Misses":1.2e7}}`,
		tenant, mem, apitest.SoloTPrivate*1.3, apitest.SoloTShared*1.9)
}

// BenchmarkQuoteBatch measures the concurrent /v2/quotes pricing path at a
// fixed batch size.
func BenchmarkQuoteBatch(b *testing.B) {
	srv := benchServer(b)
	const batch = 64
	var items []string
	for i := 0; i < batch; i++ {
		items = append(items, benchRecord(fmt.Sprintf("t%d", i%8), 128+64*(i%8)))
	}
	body := []byte(`{"quotes":[` + strings.Join(items, ",") + `]}`)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v2/quotes", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "quotes/s")
}

// BenchmarkUsageStream measures the /v3/usage NDJSON ingest loop — decode,
// price, accrue — at a stream size far beyond the /v2 batch cap.
func BenchmarkUsageStream(b *testing.B) {
	srv := benchServer(b)
	const lines = 512
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		sb.WriteString(benchRecord(fmt.Sprintf("t%d", i%8), 128+64*(i%8)))
		sb.WriteByte('\n')
	}
	body := []byte(sb.String())
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v3/usage", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(float64(lines*b.N)/b.Elapsed().Seconds(), "records/s")
}

// benchUsageRecord is benchRecord as a typed record for the binary encoder:
// the same congested usage, so the two wire formats price identical streams.
func benchUsageRecord(tenant string, mem int) UsageRecord {
	return UsageRecord{QuoteRequest: QuoteRequest{
		Usage: core.Usage{
			Language: "py",
			MemoryMB: mem,
			TPrivate: 0.08,
			TShared:  0.02,
			Probe: &core.ProbeUsage{
				TPrivate:        apitest.SoloTPrivate * 1.3,
				TShared:         apitest.SoloTShared * 1.9,
				MachineL3Misses: 1.2e7,
			},
		},
		Tenant: tenant,
	}}
}

// benchFrameBody renders the binary-frame twin of the NDJSON bench stream.
func benchFrameBody(lines, tenants int) []byte {
	var body []byte
	for i := 0; i < lines; i++ {
		rec := benchUsageRecord(fmt.Sprintf("t%d", i%tenants), 128+64*(i%8))
		body = AppendUsageFrame(body, &rec)
	}
	return body
}

// BenchmarkUsageStreamBinary measures the binary-frame /v3/usage ingest loop
// over the same records as BenchmarkUsageStream: the NDJSON-vs-binary delta
// is the wire format's, nothing else. The ≥2M records/s fast-path target in
// BENCH_ledger.json comes from this benchmark.
func BenchmarkUsageStreamBinary(b *testing.B) {
	srv := benchServer(b)
	const lines = 512
	body := benchFrameBody(lines, 8)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v3/usage", bytes.NewReader(body))
		req.Header.Set("Content-Type", ContentTypeFrames)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(float64(lines*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkUsageStreamBinarySharded is BenchmarkUsageStreamSharded's binary
// twin: the frame pipeline across ledger shard counts.
func BenchmarkUsageStreamBinarySharded(b *testing.B) {
	const lines = 2048
	const tenants = 64
	var body []byte
	for i := 0; i < lines; i++ {
		rec := benchUsageRecord(fmt.Sprintf("t%02d", i%tenants), 128+64*(i%8))
		body = AppendUsageFrame(body, &rec)
	}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := New(Config{Calibration: apitest.Calibration(), Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v3/usage", bytes.NewReader(body))
				req.Header.Set("Content-Type", ContentTypeFrames)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
				}
			}
			b.ReportMetric(float64(lines*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkUsageStreamSharded measures the parallel /v3/usage pipeline —
// worker-pool decode/price, sharded accrual — across ledger shard counts,
// with enough distinct tenants to spread the stripes. On a multi-core
// runner throughput should scale with shards until cores run out; the
// 1-shard case serializes every accrual behind one mutex.
func BenchmarkUsageStreamSharded(b *testing.B) {
	const lines = 2048
	const tenants = 64
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		sb.WriteString(benchRecord(fmt.Sprintf("t%02d", i%tenants), 128+64*(i%8)))
		sb.WriteByte('\n')
	}
	body := []byte(sb.String())
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := New(Config{Calibration: apitest.Calibration(), Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v3/usage", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
				}
			}
			b.ReportMetric(float64(lines*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
