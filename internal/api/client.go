package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Client is a typed client for the pricing service's /v2 API.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport; nil means a shared client built
	// on DefaultTransport (connection reuse sized for high-rate callers).
	HTTPClient *http.Client
	// Wire selects the encoding StreamUsage sends /v3/usage records in;
	// the zero value is NDJSON, WireFrames the binary frame format. Either
	// way the server's response is identical record for record.
	Wire WireFormat
}

// WireFormat names a /v3/usage stream encoding.
type WireFormat int

const (
	// WireNDJSON streams one JSON record per line (the default).
	WireNDJSON WireFormat = iota
	// WireFrames streams length-prefixed CRC-framed binary records
	// (Content-Type: application/x-litmus-frames); see frames.go.
	WireFrames
)

// ParseWireFormat parses a wire-format flag value: "", "ndjson" or "json"
// select NDJSON; "binary" or "frames" select the binary frame format.
func ParseWireFormat(s string) (WireFormat, error) {
	switch strings.ToLower(s) {
	case "", "ndjson", "json":
		return WireNDJSON, nil
	case "binary", "frames":
		return WireFrames, nil
	}
	return WireNDJSON, fmt.Errorf("unknown wire format %q (want ndjson or binary)", s)
}

// String returns the canonical flag spelling of the format.
func (f WireFormat) String() string {
	if f == WireFrames {
		return "binary"
	}
	return "ndjson"
}

// ContentType returns the Content-Type the format is streamed under.
func (f WireFormat) ContentType() string {
	if f == WireFrames {
		return ContentTypeFrames
	}
	return ContentTypeNDJSON
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// DefaultTransport returns the transport nil-HTTPClient clients use: the
// stdlib defaults with the idle pool sized for sustained concurrent load
// against one service. http.DefaultTransport keeps only 2 idle conns per
// host, so an open-loop generator hammering one pricingd closes and
// reopens a connection for nearly every request until the ephemeral port
// range runs dry; a deep per-host pool makes reuse the steady state.
// Callers needing different knobs clone and adjust the result, then set
// Client.HTTPClient.
func DefaultTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 0 // no global idle cap; the per-host cap governs
	t.MaxIdleConnsPerHost = 256
	return t
}

// defaultHTTPClient backs every Client with a nil HTTPClient; sharing one
// pool across clients is the point (conns are keyed per host anyway).
var defaultHTTPClient = &http.Client{Transport: DefaultTransport()}

// httpClient resolves the client to issue requests on.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// do performs one round trip: marshals in (when non-nil), decodes a 2xx
// response into out (when non-nil), and surfaces structured service errors
// as *Error values.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	var contentType string
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
		contentType = "application/json"
	}
	_, err := c.doRaw(ctx, method, path, nil, contentType, body, out)
	return err
}

// doRaw is the header-aware round trip behind do: it sends body verbatim
// with the given headers, decodes a 2xx response into out (when non-nil),
// surfaces structured service errors as *Error values, and returns the
// response headers (ETag and friends) on success and on *Error failures.
func (c *Client) doRaw(ctx context.Context, method, path string, headers map[string]string, contentType string, body io.Reader, out any) (http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range headers {
		if v != "" {
			req.Header.Set(k, v)
		}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	// Drain before closing: the transport only returns a connection to the
	// idle pool when the body was read to EOF (json.Decoder stops at the
	// value's end, leaving at least a trailing newline). Bounded, so a
	// misbehaving server cannot pin the client on an endless body.
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 256<<10))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 256<<10))
		var envelope errorEnvelope
		if json.Unmarshal(data, &envelope) == nil && envelope.Err.Message != "" {
			if envelope.Err.Status == 0 {
				envelope.Err.Status = resp.StatusCode
			}
			return resp.Header, &envelope.Err
		}
		// An all-throttled /v3/usage stream answers 429 with the full
		// UsageStreamResponse as the body (not the error envelope): decode
		// it into out so the caller keeps the accounting, and surface the
		// throttle as a *Error carrying the precise retry delay.
		if resp.StatusCode == http.StatusTooManyRequests && out != nil && json.Unmarshal(data, out) == nil {
			apiErr := &Error{Status: resp.StatusCode, Message: "throttled: every record over admission rate"}
			if usr, ok := out.(*UsageStreamResponse); ok {
				apiErr.RetryAfterSec = usr.RetryAfterSec
			}
			if apiErr.RetryAfterSec == 0 {
				if sec, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64); err == nil {
					apiErr.RetryAfterSec = sec
				}
			}
			return resp.Header, apiErr
		}
		// Legacy flat {"error":"…"} shape (v1) or non-JSON bodies.
		var flat struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &flat) == nil && flat.Error != "" {
			return resp.Header, &Error{Status: resp.StatusCode, Message: flat.Error}
		}
		return resp.Header, &Error{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return resp.Header, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return resp.Header, fmt.Errorf("api: decoding response: %w", err)
	}
	return resp.Header, nil
}

// Health checks the service's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Quote prices one invocation (POST /v2/quote).
func (c *Client) Quote(ctx context.Context, req QuoteRequest) (QuoteResponse, error) {
	var resp QuoteResponse
	err := c.do(ctx, http.MethodPost, "/v2/quote", req, &resp)
	return resp, err
}

// QuoteBatch prices a set of invocations in one call (POST /v2/quotes).
// Item i of the result answers request i; per-item failures come back as
// BatchItem.Error, not as a call error.
func (c *Client) QuoteBatch(ctx context.Context, reqs []QuoteRequest) ([]BatchItem, error) {
	var resp BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v2/quotes", BatchRequest{Quotes: reqs}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Quotes) != len(reqs) {
		return nil, fmt.Errorf("api: batch answered %d of %d quotes", len(resp.Quotes), len(reqs))
	}
	return resp.Quotes, nil
}

// Meter streams a usage batch into the tenant ledger (POST /v2/meter).
// Every record must name a tenant. Item i of the response answers record i;
// rejected records come back as MeterItem.Error while the rest of the batch
// accrues (the response counts both sides), so a non-nil call error only
// means the batch as a whole did not reach the ledger.
func (c *Client) Meter(ctx context.Context, records []QuoteRequest) (MeterResponse, error) {
	var resp MeterResponse
	if err := c.do(ctx, http.MethodPost, "/v2/meter", MeterRequest{Records: records}, &resp); err != nil {
		return MeterResponse{}, err
	}
	if len(resp.Items) != len(records) {
		return MeterResponse{}, fmt.Errorf("api: meter answered %d of %d records", len(resp.Items), len(records))
	}
	return resp, nil
}

// Pricers lists the service's named pricer registry (GET /v2/pricers).
func (c *Client) Pricers(ctx context.Context) ([]PricerInfo, error) {
	var infos []PricerInfo
	err := c.do(ctx, http.MethodGet, "/v2/pricers", nil, &infos)
	return infos, err
}

// Tables fetches the active calibration tables (GET /v2/tables).
func (c *Client) Tables(ctx context.Context) (*core.Calibration, error) {
	var cal core.Calibration
	if err := c.do(ctx, http.MethodGet, "/v2/tables", nil, &cal); err != nil {
		return nil, err
	}
	return &cal, nil
}

// SwapTables hot-swaps the service's calibration tables (POST /v2/tables).
func (c *Client) SwapTables(ctx context.Context, cal *core.Calibration) (TablesStatus, error) {
	var status TablesStatus
	err := c.do(ctx, http.MethodPost, "/v2/tables", cal, &status)
	return status, err
}

// TenantSummary fetches a tenant's aggregate billing ledger
// (GET /v2/tenants/{tenant}/summary).
func (c *Client) TenantSummary(ctx context.Context, tenant string) (TenantSummary, error) {
	var sum TenantSummary
	err := c.do(ctx, http.MethodGet, "/v2/tenants/"+url.PathEscape(tenant)+"/summary", nil, &sum)
	return sum, err
}

// --- /v3 ---------------------------------------------------------------------

// StreamUsage appends records to the usage stream (POST /v3/usage) in the
// client's wire format — NDJSON by default, binary frames when Wire is
// WireFrames; the server's per-record semantics are identical either way.
// A non-empty key is sent as the Idempotency-Key header: records without
// their own key inherit a derived one, so retrying the exact same call with
// the same key cannot double-bill (the retry comes back counted under
// Duplicates). Per-record failures are reported in the response, not as a
// call error — except the all-throttled stream, which the server answers
// with HTTP 429: the error is then a *Error with RetryAfterSec set while
// the returned response still carries the stream's full accounting.
func (c *Client) StreamUsage(ctx context.Context, key string, records []UsageRecord) (UsageStreamResponse, error) {
	body, err := EncodeUsageStream(c.Wire, records)
	if err != nil {
		return UsageStreamResponse{}, err
	}
	resp, err := c.StreamUsageBody(ctx, key, c.Wire.ContentType(), body)
	if err != nil {
		return resp, err
	}
	if resp.Lines != len(records) {
		return resp, fmt.Errorf("api: stream answered %d of %d records", resp.Lines, len(records))
	}
	return resp, nil
}

// EncodeUsageStream renders records as a /v3/usage request body in the
// given wire format — one JSON line per record, or one binary frame each.
func EncodeUsageStream(wire WireFormat, records []UsageRecord) ([]byte, error) {
	if wire == WireFrames {
		var body []byte
		for i := range records {
			body = AppendUsageFrame(body, &records[i])
		}
		return body, nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // Encode terminates each value with '\n': NDJSON
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			return nil, fmt.Errorf("api: encoding usage record: %w", err)
		}
	}
	return buf.Bytes(), nil
}

// StreamUsageBody posts an already-encoded /v3/usage body under the given
// Content-Type and returns the stream response verbatim — no record-count
// check, so a caller forwarding someone else's stream (the cluster router)
// can see a partial response for what it is and account the unprocessed
// tail itself rather than discarding the server's partial accounting. On an
// all-throttled 429 both returns are populated: the decoded stream
// accounting and a *Error whose RetryAfterSec says when to retry.
func (c *Client) StreamUsageBody(ctx context.Context, key, contentType string, body []byte) (UsageStreamResponse, error) {
	var resp UsageStreamResponse
	_, err := c.doRaw(ctx, http.MethodPost, "/v3/usage",
		map[string]string{"Idempotency-Key": key}, contentType, bytes.NewReader(body), &resp)
	if err != nil {
		var apiErr *Error
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests && resp.Lines > 0 {
			return resp, err
		}
		return UsageStreamResponse{}, err
	}
	return resp, nil
}

// Forecast fetches the admission controller's next-window view of a tenant
// (GET /v3/tenants/{tenant}/forecast): observed vs predicted arrival rate,
// the live refill rate, throttle counters, and the recent ledger windows
// the projection is grounded in. 404s when admission control is disabled.
func (c *Client) Forecast(ctx context.Context, tenant string) (ForecastResponse, error) {
	var fc ForecastResponse
	err := c.do(ctx, http.MethodGet, "/v3/tenants/"+url.PathEscape(tenant)+"/forecast", nil, &fc)
	return fc, err
}

// Tenants fetches one page of the sorted tenant listing (GET /v3/tenants).
// Pass the previous page's NextCursor (empty for the first page); limit 0
// selects the service default.
func (c *Client) Tenants(ctx context.Context, cursor string, limit int) (TenantPage, error) {
	q := url.Values{}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	path := "/v3/tenants"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page TenantPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Statement fetches a tenant's windowed bill over trace minutes
// [fromMinute, toMinute] (GET /v3/tenants/{tenant}/statement); toMinute < 0
// means open-ended.
func (c *Client) Statement(ctx context.Context, tenant string, fromMinute, toMinute int) (StatementResponse, error) {
	q := url.Values{}
	if fromMinute > 0 {
		q.Set("from", fmt.Sprint(fromMinute))
	}
	if toMinute >= 0 {
		q.Set("to", fmt.Sprint(toMinute))
	}
	path := "/v3/tenants/" + url.PathEscape(tenant) + "/statement"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var st StatementResponse
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// TablesWithETag fetches the active calibration tables and their version
// tag (GET /v3/tables). Feed the tag to SwapTablesIfMatch for a
// lost-update-safe read-modify-write.
func (c *Client) TablesWithETag(ctx context.Context) (*core.Calibration, string, error) {
	var cal core.Calibration
	hdr, err := c.doRaw(ctx, http.MethodGet, "/v3/tables", nil, "", nil, &cal)
	if err != nil {
		return nil, "", err
	}
	return &cal, hdr.Get("ETag"), nil
}

// SwapTablesIfMatch hot-swaps the calibration tables (PUT /v3/tables) only
// when ifMatch still names the active table version; "" or "*" swaps
// unconditionally. On a version conflict the returned *Error has status
// 412 and the second return value carries the current version, so the
// caller can re-read and retry. On success it returns the new version tag.
func (c *Client) SwapTablesIfMatch(ctx context.Context, cal *core.Calibration, ifMatch string) (TablesStatus, string, error) {
	data, err := json.Marshal(cal)
	if err != nil {
		return TablesStatus{}, "", fmt.Errorf("api: encoding tables: %w", err)
	}
	var status TablesStatus
	hdr, err := c.doRaw(ctx, http.MethodPut, "/v3/tables",
		map[string]string{"If-Match": ifMatch}, "application/json", bytes.NewReader(data), &status)
	etag := ""
	if hdr != nil {
		etag = hdr.Get("ETag")
	}
	if err != nil {
		return TablesStatus{}, etag, err
	}
	return status, etag, nil
}
