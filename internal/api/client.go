package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/core"
)

// Client is a typed client for the pricing service's /v2 API.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// do performs one round trip: marshals in (when non-nil), decodes a 2xx
// response into out (when non-nil), and surfaces structured service errors
// as *Error values.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var envelope errorEnvelope
		if json.Unmarshal(data, &envelope) == nil && envelope.Err.Message != "" {
			if envelope.Err.Status == 0 {
				envelope.Err.Status = resp.StatusCode
			}
			return &envelope.Err
		}
		// Legacy flat {"error":"…"} shape (v1) or non-JSON bodies.
		var flat struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &flat) == nil && flat.Error != "" {
			return &Error{Status: resp.StatusCode, Message: flat.Error}
		}
		return &Error{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decoding response: %w", err)
	}
	return nil
}

// Health checks the service's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Quote prices one invocation (POST /v2/quote).
func (c *Client) Quote(ctx context.Context, req QuoteRequest) (QuoteResponse, error) {
	var resp QuoteResponse
	err := c.do(ctx, http.MethodPost, "/v2/quote", req, &resp)
	return resp, err
}

// QuoteBatch prices a set of invocations in one call (POST /v2/quotes).
// Item i of the result answers request i; per-item failures come back as
// BatchItem.Error, not as a call error.
func (c *Client) QuoteBatch(ctx context.Context, reqs []QuoteRequest) ([]BatchItem, error) {
	var resp BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v2/quotes", BatchRequest{Quotes: reqs}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Quotes) != len(reqs) {
		return nil, fmt.Errorf("api: batch answered %d of %d quotes", len(resp.Quotes), len(reqs))
	}
	return resp.Quotes, nil
}

// Meter streams a usage batch into the tenant ledger (POST /v2/meter).
// Every record must name a tenant. Item i of the response answers record i;
// rejected records come back as MeterItem.Error while the rest of the batch
// accrues (the response counts both sides), so a non-nil call error only
// means the batch as a whole did not reach the ledger.
func (c *Client) Meter(ctx context.Context, records []QuoteRequest) (MeterResponse, error) {
	var resp MeterResponse
	if err := c.do(ctx, http.MethodPost, "/v2/meter", MeterRequest{Records: records}, &resp); err != nil {
		return MeterResponse{}, err
	}
	if len(resp.Items) != len(records) {
		return MeterResponse{}, fmt.Errorf("api: meter answered %d of %d records", len(resp.Items), len(records))
	}
	return resp, nil
}

// Pricers lists the service's named pricer registry (GET /v2/pricers).
func (c *Client) Pricers(ctx context.Context) ([]PricerInfo, error) {
	var infos []PricerInfo
	err := c.do(ctx, http.MethodGet, "/v2/pricers", nil, &infos)
	return infos, err
}

// Tables fetches the active calibration tables (GET /v2/tables).
func (c *Client) Tables(ctx context.Context) (*core.Calibration, error) {
	var cal core.Calibration
	if err := c.do(ctx, http.MethodGet, "/v2/tables", nil, &cal); err != nil {
		return nil, err
	}
	return &cal, nil
}

// SwapTables hot-swaps the service's calibration tables (POST /v2/tables).
func (c *Client) SwapTables(ctx context.Context, cal *core.Calibration) (TablesStatus, error) {
	var status TablesStatus
	err := c.do(ctx, http.MethodPost, "/v2/tables", cal, &status)
	return status, err
}

// TenantSummary fetches a tenant's aggregate billing ledger
// (GET /v2/tenants/{tenant}/summary).
func (c *Client) TenantSummary(ctx context.Context, tenant string) (TenantSummary, error) {
	var sum TenantSummary
	err := c.do(ctx, http.MethodGet, "/v2/tenants/"+url.PathEscape(tenant)+"/summary", nil, &sum)
	return sum, err
}
