package api

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/api/apitest"
	"repro/internal/core"
)

// ndLine renders one NDJSON usage line at the fixture's congested reading.
// minute < 0 omits the field; key "" omits the field.
func ndLine(tenant string, mem, minute int, key string) string {
	var extra strings.Builder
	if minute >= 0 {
		fmt.Fprintf(&extra, `,"minute":%d`, minute)
	}
	if key != "" {
		fmt.Fprintf(&extra, `,"key":%q`, key)
	}
	return fmt.Sprintf(`{"tenant":%q,"language":"py","memoryMB":%d,"tPrivate":0.08,"tShared":0.02,"probe":{"tPrivate":%g,"tShared":%g,"machineL3Misses":1.2e7}%s}`,
		tenant, mem, apitest.SoloTPrivate*1.3, apitest.SoloTShared*1.9, extra.String())
}

// postStream POSTs an NDJSON body, optionally with an Idempotency-Key.
func postStream(t *testing.T, url, key, body string) UsageStreamResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v3/usage", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status = %d: %s", resp.StatusCode, data)
	}
	var out UsageStreamResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestV3UsageStreamPerLineErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := strings.Join([]string{
		ndLine("acme", 128, 0, ""),
		"", // blank lines are skipped, not counted
		"{not json",
		`{"language":"py","memoryMB":64,"tPrivate":0.01,"tShared":0}`,             // no tenant
		`{"tenant":"acme","language":"py","memoryMB":0,"tPrivate":1,"tShared":0}`, // invalid usage
		ndLine("zeta", 256, 0, ""),
	}, "\n") + "\n"
	out := postStream(t, ts.URL, "", body)
	if out.Lines != 5 || out.Accepted != 2 || out.Rejected != 3 || out.Duplicates != 0 || out.Dropped != 0 {
		t.Fatalf("stream = %+v", out)
	}
	if len(out.Errors) != 3 {
		t.Fatalf("errors = %+v", out.Errors)
	}
	// 1-based physical line numbers, blank line included in the numbering.
	wantLines := []int{3, 4, 5}
	for i, e := range out.Errors {
		if e.Line != wantLines[i] || e.Error.Status != http.StatusBadRequest {
			t.Errorf("error %d = %+v, want line %d", i, e, wantLines[i])
		}
	}
	if len(out.Tenants) != 2 || out.Tenants[0].Tenant != "acme" || out.Tenants[1].Tenant != "zeta" {
		t.Errorf("touched tenants = %+v", out.Tenants)
	}
	if out.StreamError != "" {
		t.Errorf("unexpected stream error %q", out.StreamError)
	}
}

func TestV3UsageStreamBeyondBatchCap(t *testing.T) {
	// MaxBatch bounds /v2 batches only; the stream sails past it in
	// constant memory.
	_, ts := newTestServer(t, Config{MaxBatch: 4})
	var sb strings.Builder
	const n = 300
	for i := 0; i < n; i++ {
		sb.WriteString(ndLine(fmt.Sprintf("t%02d", i%7), 128+i%5*64, i/10, ""))
		sb.WriteByte('\n')
	}
	out := postStream(t, ts.URL, "", sb.String())
	if out.Lines != n || out.Accepted != n {
		t.Fatalf("stream = %+v", out)
	}
	var total int64
	for _, sum := range out.Tenants {
		total += sum.Invocations
	}
	if total != n {
		t.Errorf("accrued %d invocations, want %d", total, n)
	}
}

func TestV3UsageStreamLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxStreamLines: 2})
	body := strings.Join([]string{
		ndLine("a", 128, 0, ""), ndLine("a", 128, 0, ""), ndLine("a", 128, 0, ""),
	}, "\n")
	out := postStream(t, ts.URL, "", body)
	if out.Accepted != 2 || !strings.Contains(out.StreamError, "exceeds 2 lines") {
		t.Errorf("line-capped stream = %+v", out)
	}

	// Blank and whitespace-only lines count against the cap too: a stream
	// of bare newlines cannot hold the handler open forever.
	out = postStream(t, ts.URL, "", strings.Repeat("\n", 50)+ndLine("a", 128, 0, "")+"\n")
	if out.Accepted != 0 || !strings.Contains(out.StreamError, "exceeds 2 lines") {
		t.Errorf("blank-line flood = %+v", out)
	}

	// An oversized line stops the stream with an explicit error; everything
	// before it still accrued.
	_, ts2 := newTestServer(t, Config{MaxBodyBytes: 512})
	long := ndLine("b", 128, 0, strings.Repeat("x", 2048))
	out = postStream(t, ts2.URL, "", ndLine("a", 128, 0, "")+"\n"+long+"\n")
	if out.Accepted != 1 || !strings.Contains(out.StreamError, "exceeds 512 bytes") {
		t.Errorf("oversized-line stream = %+v", out)
	}

	resp, err := http.Get(ts.URL + "/v3/usage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v3/usage status = %d", resp.StatusCode)
	}
}

func TestV3UsageStreamIdempotency(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Line-level keys: the duplicate inside one stream bills once.
	body := ndLine("acme", 128, 0, "k1") + "\n" + ndLine("acme", 128, 0, "k1") + "\n"
	out := postStream(t, ts.URL, "", body)
	if out.Accepted != 1 || out.Duplicates != 1 {
		t.Fatalf("stream = %+v", out)
	}
	if len(out.Tenants) != 1 || out.Tenants[0].Invocations != 1 {
		t.Fatalf("tenants = %+v", out.Tenants)
	}

	// Same-key lines with different payloads: the first line always wins,
	// whatever the decode workers' interleaving — accrual happens in line
	// order in the collector, so billing is deterministic.
	for i := 0; i < 20; i++ {
		_, ts2 := newTestServer(t, Config{})
		conflict := ndLine("det", 128, 0, "kk") + "\n" + ndLine("det", 1024, 0, "kk") + "\n"
		out := postStream(t, ts2.URL, "", conflict)
		if out.Accepted != 1 || out.Duplicates != 1 {
			t.Fatalf("conflicting keys = %+v", out)
		}
		first := postStream(t, ts2.URL, "", ndLine("ref", 128, 0, "")+"\n")
		//litmus:float-eq-ok differential: both bills derive from the same priced line
		if out.Tenants[0].Billed != first.Tenants[0].Billed {
			t.Fatalf("same-key conflict billed the later line: %v != %v (run %d)",
				out.Tenants[0].Billed, first.Tenants[0].Billed, i)
		}
	}

	// Header-derived keys: replaying the whole stream under the same
	// Idempotency-Key is a no-op, a different key bills again.
	stream := ndLine("zeta", 128, 0, "") + "\n" + ndLine("zeta", 256, 1, "") + "\n"
	first := postStream(t, ts.URL, "retry-1", stream)
	if first.Accepted != 2 {
		t.Fatalf("first = %+v", first)
	}
	replay := postStream(t, ts.URL, "retry-1", stream)
	if replay.Accepted != 0 || replay.Duplicates != 2 {
		t.Fatalf("replay = %+v", replay)
	}
	if replay.Tenants[0] != first.Tenants[0] {
		t.Errorf("replay changed the ledger: %+v != %+v", replay.Tenants[0], first.Tenants[0])
	}
	second := postStream(t, ts.URL, "retry-2", stream)
	if second.Accepted != 2 || second.Tenants[0].Invocations != 4 {
		t.Fatalf("fresh key = %+v", second)
	}
}

func TestV3UsageStreamLedgerCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTenants: 1})
	body := ndLine("a", 128, 0, "") + "\n" + ndLine("b", 128, 0, "") + "\n"
	out := postStream(t, ts.URL, "", body)
	if out.Accepted != 1 || out.Dropped != 1 || out.Rejected != 0 {
		t.Fatalf("stream = %+v", out)
	}
	if len(out.Errors) != 1 || out.Errors[0].Error.Status != http.StatusServiceUnavailable {
		t.Errorf("errors = %+v", out.Errors)
	}
	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.DroppedAccruals != 1 {
		t.Errorf("healthz dropped = %d, want 1", h.DroppedAccruals)
	}
}

// --- GET /v3/tenants ---------------------------------------------------------

func TestV3TenantListPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var sb strings.Builder
	for i := 0; i < 5; i++ {
		sb.WriteString(ndLine(fmt.Sprintf("t%02d", i), 128, 0, ""))
		sb.WriteByte('\n')
	}
	postStream(t, ts.URL, "", sb.String())

	var got []string
	cursor := ""
	for {
		url := ts.URL + "/v3/tenants?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var page TenantPage
		if resp := getJSON(t, url, &page); resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		for _, sum := range page.Tenants {
			got = append(got, sum.Tenant)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	want := []string{"t00", "t01", "t02", "t03", "t04"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("paged tenants = %v, want %v (sorted, exactly once)", got, want)
	}

	resp, data := postJSON(t, ts.URL+"/v3/tenants", "{}")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v3/tenants status = %d (%s)", resp.StatusCode, data)
	}
	var page TenantPage
	if resp := getJSON(t, ts.URL+"/v3/tenants?limit=banana", &page); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d", resp.StatusCode)
	}
}

// --- GET /v3/tenants/{tenant}/statement --------------------------------------

func TestV3Statement(t *testing.T) {
	_, ts := newTestServer(t, Config{WindowMinutes: 2})
	body := strings.Join([]string{
		ndLine("acme", 128, 0, ""),
		ndLine("acme", 256, 1, ""),
		ndLine("acme", 128, 5, ""),
	}, "\n")
	postStream(t, ts.URL, "", body)

	var st StatementResponse
	if resp := getJSON(t, ts.URL+"/v3/tenants/acme/statement", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st.Tenant != "acme" || st.WindowMinutes != 2 || st.Invocations != 3 {
		t.Fatalf("statement = %+v", st)
	}
	if len(st.Lines) != 2 || st.Lines[0].Window != 0 || st.Lines[1].Window != 2 {
		t.Fatalf("lines = %+v", st.Lines)
	}
	if st.Lines[0].Invocations != 2 || st.Lines[1].Invocations != 1 {
		t.Errorf("window invocations = %+v", st.Lines)
	}
	// Commercial-vs-charged: the litmus line must be discounted below the
	// commercial column in every window.
	for _, line := range st.Lines {
		if line.Billed <= 0 || line.Billed >= line.Commercial {
			t.Errorf("window %d not discounted: %+v", line.Window, line)
		}
		if math.Abs(line.Bills["litmus"]-line.Billed) > 1e-12 {
			t.Errorf("window %d bills = %+v", line.Window, line.Bills)
		}
	}
	// The statement totals agree with the v2 summary view of the same
	// ledger.
	var sum TenantSummary
	getJSON(t, ts.URL+"/v2/tenants/acme/summary", &sum)
	if sum.Invocations != st.Invocations || math.Abs(sum.Billed-st.Billed) > 1e-12 {
		t.Errorf("summary %+v diverges from statement %+v", sum, st)
	}

	// Ranged reads.
	var ranged StatementResponse
	getJSON(t, ts.URL+"/v3/tenants/acme/statement?from=4&to=5", &ranged)
	if len(ranged.Lines) != 1 || ranged.Lines[0].Window != 2 || ranged.Invocations != 1 {
		t.Errorf("ranged statement = %+v", ranged)
	}

	for _, bad := range []string{"?from=-1", "?to=x", "?from=5&to=1"} {
		resp, err := http.Get(ts.URL + "/v3/tenants/acme/statement" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d", bad, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v3/tenants/ghost/statement")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant status = %d", resp.StatusCode)
	}
}

// --- /v3/tables --------------------------------------------------------------

func TestV3TablesETag(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get := func() (string, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v3/tables")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("ETag"), resp.StatusCode
	}
	etag, code := get()
	if code != http.StatusOK || etag == "" {
		t.Fatalf("GET = %d, etag %q", code, etag)
	}

	// If-None-Match short-circuits an unchanged read.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v3/tables", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match status = %d", resp.StatusCode)
	}

	put := func(ifMatch string) (*http.Response, []byte) {
		t.Helper()
		alt := apitest.Calibration()
		alt.Machine = "swapped-" + ifMatch
		data, err := json.Marshal(alt)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v3/tables", strings.NewReader(string(data)))
		if err != nil {
			t.Fatal(err)
		}
		if ifMatch != "" {
			req.Header.Set("If-Match", ifMatch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}

	// A matching If-Match swaps and advances the version.
	resp2, body := put(etag)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d: %s", resp2.StatusCode, body)
	}
	etag2 := resp2.Header.Get("ETag")
	if etag2 == "" || etag2 == etag {
		t.Fatalf("swap did not advance the version: %q → %q", etag, etag2)
	}

	// The stale version now loses: 412 and the tables stay put.
	resp3, body := put(etag)
	if resp3.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale PUT status = %d: %s", resp3.StatusCode, body)
	}
	if e := v2ErrorOf(t, body); !strings.Contains(e.Message, "version mismatch") {
		t.Errorf("stale PUT error = %+v", e)
	}
	if cur, _ := get(); cur != etag2 {
		t.Errorf("stale PUT moved the version to %q", cur)
	}
	var active core.Calibration
	getJSON(t, ts.URL+"/v3/tables", &active)
	if active.Machine != "swapped-"+etag {
		t.Errorf("active machine = %q", active.Machine)
	}

	// "*" and no If-Match swap unconditionally.
	resp4, body := put("*")
	if resp4.StatusCode != http.StatusOK {
		t.Errorf("If-Match * status = %d: %s", resp4.StatusCode, body)
	}
	resp5, body := put("")
	if resp5.StatusCode != http.StatusOK {
		t.Errorf("unconditional PUT status = %d: %s", resp5.StatusCode, body)
	}
}

// TestV3TablesConcurrentSwapsLoseNoUpdates races N swaps all holding the
// same starting version: exactly one may win, everyone else must get 412 —
// the lost-update anomaly the If-Match protocol exists to prevent. Run
// with -race this also exercises the compare-and-swap critical section.
func TestV3TablesConcurrentSwapsLoseNoUpdates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v3/tables")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")

	const workers = 8
	codes := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			alt := apitest.Calibration()
			alt.Machine = fmt.Sprintf("writer-%d", w)
			data, err := json.Marshal(alt)
			if err != nil {
				codes[w] = -1
				return
			}
			req, err := http.NewRequest(http.MethodPut, ts.URL+"/v3/tables", strings.NewReader(string(data)))
			if err != nil {
				codes[w] = -1
				return
			}
			req.Header.Set("If-Match", etag)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				codes[w] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[w] = resp.StatusCode
		}(w)
	}
	wg.Wait()
	wins, conflicts := 0, 0
	for _, code := range codes {
		switch code {
		case http.StatusOK:
			wins++
		case http.StatusPreconditionFailed:
			conflicts++
		default:
			t.Fatalf("unexpected status %d in %v", code, codes)
		}
	}
	if wins != 1 || conflicts != workers-1 {
		t.Errorf("wins = %d, conflicts = %d (want 1/%d): %v", wins, conflicts, workers-1, codes)
	}
}

// --- cross-version equivalence (acceptance) ----------------------------------

// TestMeterAndUsageStreamBillIdentically is the acceptance check for the
// tentpole: the same records ingested through the buffered /v2/meter path
// on one server and through concurrent /v3/usage NDJSON streams on another
// must produce identical tenant statements — and replaying one of the
// NDJSON streams under its original idempotency key must not double-bill.
// Both ingests run from many goroutines; under -race this exercises the
// whole ledger path.
func TestMeterAndUsageStreamBillIdentically(t *testing.T) {
	_, tsMeter := newTestServer(t, Config{})
	_, tsStream := newTestServer(t, Config{})

	// 60 records across 3 tenants with distinct memory sizes (and thus
	// distinct prices), chunked into 6 concurrent batches.
	tenants := []string{"acme", "beta", "zeta"}
	const chunks, perChunk = 6, 10
	type rec struct {
		tenant string
		mem    int
	}
	all := make([][]rec, chunks)
	for c := 0; c < chunks; c++ {
		for i := 0; i < perChunk; i++ {
			n := c*perChunk + i
			all[c] = append(all[c], rec{tenant: tenants[n%len(tenants)], mem: 64 + 64*(n%9)})
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 2*chunks)
	for c := 0; c < chunks; c++ {
		wg.Add(1)
		go func(c int) { // /v2/meter batch
			defer wg.Done()
			var items []string
			for _, r := range all[c] {
				items = append(items, ndLine(r.tenant, r.mem, -1, ""))
			}
			body := `{"records":[` + strings.Join(items, ",") + `]}`
			resp, data := postJSON(t, tsMeter.URL+"/v2/meter", body)
			var mr MeterResponse
			if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &mr) != nil || mr.Accepted != perChunk {
				errs <- fmt.Sprintf("meter chunk %d: %d %s", c, resp.StatusCode, data)
			}
		}(c)
		wg.Add(1)
		go func(c int) { // /v3/usage NDJSON stream
			defer wg.Done()
			var sb strings.Builder
			for _, r := range all[c] {
				sb.WriteString(ndLine(r.tenant, r.mem, -1, ""))
				sb.WriteByte('\n')
			}
			out := postStream(t, tsStream.URL, fmt.Sprintf("chunk-%d", c), sb.String())
			if out.Accepted != perChunk || out.Rejected != 0 || out.Dropped != 0 {
				errs <- fmt.Sprintf("stream chunk %d: %+v", c, out)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	statements := func(ts string) map[string]StatementResponse {
		out := map[string]StatementResponse{}
		for _, tenant := range tenants {
			var st StatementResponse
			if resp := getJSON(t, ts+"/v3/tenants/"+tenant+"/statement", &st); resp.StatusCode != http.StatusOK {
				t.Fatalf("statement %s: %d", tenant, resp.StatusCode)
			}
			out[tenant] = st
		}
		return out
	}
	viaMeter, viaStream := statements(tsMeter.URL), statements(tsStream.URL)
	for _, tenant := range tenants {
		a, b := viaMeter[tenant], viaStream[tenant]
		if a.Invocations != b.Invocations || len(a.Lines) != len(b.Lines) {
			t.Fatalf("%s: meter %+v vs stream %+v", tenant, a, b)
		}
		// Float sums may differ in accrual order only; bound the drift at
		// machine epsilon scale.
		if math.Abs(a.Billed-b.Billed) > 1e-9*math.Max(1, a.Billed) ||
			math.Abs(a.Commercial-b.Commercial) > 1e-9*math.Max(1, a.Commercial) {
			t.Errorf("%s bills diverge: meter %v/%v, stream %v/%v",
				tenant, a.Commercial, a.Billed, b.Commercial, b.Billed)
		}
		for i := range a.Lines {
			if a.Lines[i].Invocations != b.Lines[i].Invocations || a.Lines[i].Window != b.Lines[i].Window {
				t.Errorf("%s line %d: meter %+v, stream %+v", tenant, i, a.Lines[i], b.Lines[i])
			}
		}
	}

	// Replay chunk 0 on the stream server under its original key: every
	// line is a duplicate and no statement moves.
	var sb strings.Builder
	for _, r := range all[0] {
		sb.WriteString(ndLine(r.tenant, r.mem, -1, ""))
		sb.WriteByte('\n')
	}
	replay := postStream(t, tsStream.URL, "chunk-0", sb.String())
	if replay.Accepted != 0 || replay.Duplicates != perChunk {
		t.Fatalf("replay = %+v, want all duplicates", replay)
	}
	after := statements(tsStream.URL)
	for _, tenant := range tenants {
		//litmus:float-eq-ok differential: replay must reproduce the exact statement
		if after[tenant].Invocations != viaStream[tenant].Invocations || after[tenant].Billed != viaStream[tenant].Billed {
			t.Errorf("%s: replay changed the statement: %+v != %+v", tenant, after[tenant], viaStream[tenant])
		}
	}
}
