package api

// The binary ingest wire format for POST /v3/usage: length-prefixed,
// CRC-framed usage records, content-negotiated via Content-Type
// (application/x-litmus-frames). It exists because NDJSON ingest is
// decode-bound — JSON unmarshalling dominates the per-record cost by an
// order of magnitude — while the frame decoder reuses one record, one
// probe and one string-intern table across the whole stream, so the warm
// path allocates nothing per record.
//
// Framing reuses the WAL idiom from internal/ledger/wal.go: every record is
//
//	[payloadLen u32 LE][crc32 u32 LE][payload]
//
// where payloadLen counts the payload bytes and the CRC (IEEE) covers the
// payload. The payload itself is
//
//	version u8 | flags u8 (bit0: probe present) |
//	minute varint (zigzag) | memoryMB varint (zigzag) |
//	tPrivate f64 LE | tShared f64 LE |
//	[probe: tPrivate f64 LE | tShared f64 LE | machineL3Misses f64 LE] |
//	tenant | pricer | key | abbr | language   (each uvarint-len + bytes)
//
// A frame whose payload fails the CRC or does not parse exactly is rejected
// individually — the length prefix keeps the stream in sync — while a torn
// header/payload at EOF or an oversized declared length aborts the stream,
// mirroring the NDJSON path's oversized-line semantics.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/http"

	"repro/internal/core"
)

const (
	// ContentTypeFrames selects the binary frame ingest path on
	// POST /v3/usage; ContentTypeNDJSON (and anything else) selects NDJSON.
	ContentTypeFrames = "application/x-litmus-frames"
	ContentTypeNDJSON = "application/x-ndjson"

	frameHeaderLen    = 8
	usageFrameVersion = 1
	frameFlagProbe    = 1 << 0
)

// ErrFrameTooLarge marks a frame whose declared payload length exceeds the
// reader's limit; the stream cannot be resynced past it.
var ErrFrameTooLarge = errors.New("frame payload exceeds limit")

// AppendUsageFrame appends rec's framed binary encoding to dst and returns
// the extended slice.
func AppendUsageFrame(dst []byte, rec *UsageRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	flags := byte(0)
	if rec.Probe != nil {
		flags |= frameFlagProbe
	}
	dst = append(dst, usageFrameVersion, flags)
	// Zigzag varints: minute and memoryMB are validated server-side, so the
	// encoding must carry the invalid negatives a JSON line could — the two
	// formats have to reject exactly the same records.
	dst = binary.AppendVarint(dst, int64(rec.Minute))
	dst = binary.AppendVarint(dst, int64(rec.MemoryMB))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.TPrivate))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.TShared))
	if rec.Probe != nil {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.Probe.TPrivate))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.Probe.TShared))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.Probe.MachineL3Misses))
	}
	for _, s := range [...]string{rec.Tenant, rec.Pricer, rec.Key, rec.Abbr, rec.Language} {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	payload := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// internTable deduplicates the strings a stream repeats on every record
// (tenant, pricer, language, abbr): the map lookup with a []byte key
// compiles to no allocation, so a warm stream decodes its strings for free.
// Interned strings are immutable and safe to retain past the decoder.
type internTable struct {
	m map[string]string
}

const (
	// maxInternEntries bounds the table so an adversarial stream of unique
	// strings cannot grow it without limit; maxInternBytes keeps oversized
	// one-off strings out of it entirely.
	maxInternEntries = 4096
	maxInternBytes   = 256
)

func (t *internTable) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxInternBytes {
		return string(b)
	}
	if t.m == nil {
		t.m = make(map[string]string, 64)
	}
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(t.m) < maxInternEntries {
		t.m[s] = s
	}
	return s
}

// strCached is str behind a one-entry memo: a given field in a usage stream
// repeats heavily (one producer, one language), so the common case becomes a
// length check plus memcmp instead of a map probe.
func (t *internTable) strCached(last *string, b []byte) string {
	if len(b) == len(*last) && string(b) == *last {
		return *last
	}
	s := t.str(b)
	*last = s
	return s
}

// FrameDecoder decodes usage frames with zero steady-state allocations: the
// record, its probe and the intern table are reused across Decode calls.
// The returned record is only valid until the next Decode — callers copy
// out what they keep (the interned strings themselves are stable).
type FrameDecoder struct {
	rec   UsageRecord
	probe core.ProbeUsage
	in    internTable
	// Per-field intern memos (see internTable.strCached).
	lastTenant, lastPricer, lastAbbr, lastLang string
}

// Decode verifies the payload against crc and parses it into the reused
// record. Failures come back as a per-frame *Error with the same status the
// NDJSON path gives a malformed line; the caller decides stream-level
// consequences (there are none — the length prefix keeps the offset in
// sync).
func (d *FrameDecoder) Decode(payload []byte, crc uint32) (*UsageRecord, *Error) {
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, &Error{Status: http.StatusBadRequest, Message: "frame crc mismatch"}
	}
	if err := d.decodePayload(payload); err != nil {
		return nil, &Error{Status: http.StatusBadRequest, Message: fmt.Sprintf("malformed frame: %v", err)}
	}
	return &d.rec, nil
}

// decodePayload parses one frame payload into the reused record. It must
// consume every byte — trailing garbage inside a CRC-valid frame is still a
// corrupt record (the WAL decoder draws the same line).
func (d *FrameDecoder) decodePayload(b []byte) error {
	if len(b) < 2 {
		return fmt.Errorf("payload truncated at %d bytes", len(b))
	}
	if b[0] != usageFrameVersion {
		return fmt.Errorf("unknown frame version %d", b[0])
	}
	flags := b[1]
	if flags&^frameFlagProbe != 0 {
		return fmt.Errorf("unknown frame flags %#x", flags)
	}
	b = b[2:]
	minute, n := binary.Varint(b)
	if n <= 0 {
		return fmt.Errorf("bad minute varint")
	}
	b = b[n:]
	mem, n := binary.Varint(b)
	if n <= 0 {
		return fmt.Errorf("bad memoryMB varint")
	}
	b = b[n:]
	if len(b) < 16 {
		return fmt.Errorf("occupancy truncated")
	}
	rec := &d.rec
	rec.Minute = int(minute)
	rec.MemoryMB = int(mem)
	rec.TPrivate = math.Float64frombits(binary.LittleEndian.Uint64(b))
	rec.TShared = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	b = b[16:]
	if flags&frameFlagProbe != 0 {
		if len(b) < 24 {
			return fmt.Errorf("probe truncated")
		}
		d.probe.TPrivate = math.Float64frombits(binary.LittleEndian.Uint64(b))
		d.probe.TShared = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
		d.probe.MachineL3Misses = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
		rec.Probe = &d.probe
		b = b[24:]
	} else {
		rec.Probe = nil
	}
	var fields [5][]byte
	for i := range fields {
		l, n := binary.Uvarint(b)
		if n <= 0 || l > uint64(len(b)-n) {
			return fmt.Errorf("bad string length")
		}
		fields[i] = b[n : n+int(l)]
		b = b[n+int(l):]
	}
	if len(b) != 0 {
		return fmt.Errorf("%d trailing bytes in frame", len(b))
	}
	rec.Tenant = d.in.strCached(&d.lastTenant, fields[0])
	rec.Pricer = d.in.strCached(&d.lastPricer, fields[1])
	// Keys are near-unique by design — interning them would churn the table
	// for no hits.
	if len(fields[2]) == 0 {
		rec.Key = ""
	} else {
		rec.Key = string(fields[2])
	}
	rec.Abbr = d.in.strCached(&d.lastAbbr, fields[3])
	rec.Language = d.in.strCached(&d.lastLang, fields[4])
	return nil
}

// FrameReader walks a binary usage stream frame by frame, reusing one
// payload buffer. Next's result is valid until the following Next.
type FrameReader struct {
	br  *bufio.Reader
	max int
	buf []byte // spill for payloads larger than the bufio window
}

// NewFrameReader reads frames from r, rejecting any frame whose declared
// payload exceeds maxPayload bytes (the binary analogue of the NDJSON
// per-line cap).
func NewFrameReader(r io.Reader, maxPayload int64) *FrameReader {
	size := 64 << 10
	if int64(size) > maxPayload+frameHeaderLen {
		size = int(maxPayload) + frameHeaderLen
	}
	return &FrameReader{br: bufio.NewReaderSize(r, size), max: int(maxPayload)}
}

// Reset prepares the reader for a new stream, keeping its buffered window
// and spill buffer (FrameReaders are pooled per server — the 64KB window is
// the ingest path's largest allocation).
func (fr *FrameReader) Reset(r io.Reader) {
	fr.br.Reset(r)
}

// Next returns the next frame's payload and declared CRC. It returns io.EOF
// at a clean frame boundary; an oversized declared length comes back
// wrapping ErrFrameTooLarge, and a torn header or payload as a descriptive
// error — in both cases the stream cannot continue. The CRC is NOT verified
// here; FrameDecoder.Decode checks it so a corrupt payload rejects one
// frame without desyncing the offset.
func (fr *FrameReader) Next() ([]byte, uint32, error) {
	hdr, err := fr.br.Peek(frameHeaderLen)
	if err != nil {
		if err == io.EOF {
			if len(hdr) == 0 {
				return nil, 0, io.EOF
			}
			err = io.ErrUnexpectedEOF
		}
		return nil, 0, fmt.Errorf("torn frame header: %v", err)
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if int64(length) > int64(fr.max) {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, length)
	}
	fr.br.Discard(frameHeaderLen)
	// Fast path: serve the payload straight out of the bufio window — no
	// copy. Peek fills as needed, so this only falls through when the
	// payload exceeds the buffer (ErrBufferFull) or the stream is torn.
	if payload, err := fr.br.Peek(int(length)); err == nil {
		fr.br.Discard(int(length))
		return payload, crc, nil
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	buf := fr.buf[:length]
	if _, err := io.ReadFull(fr.br, buf); err != nil {
		return nil, 0, fmt.Errorf("torn frame payload: %v", err)
	}
	return buf, crc, nil
}
