package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api/apitest"
	"repro/internal/ledger"
)

// fuzzLimits keep the fuzzer inside interesting territory: a small line cap
// and byte cap mean generated inputs actually reach the oversized-line and
// line-cap paths.
const (
	fuzzMaxBodyBytes   = 2048
	fuzzMaxStreamLines = 128
)

// FuzzUsageStreamParser throws arbitrary bodies at the /v3/usage NDJSON
// parser: malformed JSON, blank-line floods, oversized lines, duplicate
// idempotency keys mid-stream, arbitrary header keys. The handler must
// never panic, must account for every non-blank line in exactly one outcome
// bucket, and must keep per-line errors line-accurate — every line the test
// itself can classify as a parse-level reject (invalid JSON, missing
// tenant, negative minute) has to come back rejected under its own line
// number.
func FuzzUsageStreamParser(f *testing.F) {
	srv, err := New(Config{
		Calibration:    apitest.Calibration(),
		MaxBodyBytes:   fuzzMaxBodyBytes,
		MaxStreamLines: fuzzMaxStreamLines,
	})
	if err != nil {
		f.Fatal(err)
	}

	valid := `{"tenant":"acme","language":"py","memoryMB":128,"tPrivate":0.08,"tShared":0.02,"probe":{"tPrivate":0.02,"tShared":0.008,"machineL3Misses":1.2e7}}`
	keyed := `{"tenant":"acme","language":"py","memoryMB":128,"tPrivate":0.08,"tShared":0.02,"key":"dup","probe":{"tPrivate":0.02,"tShared":0.008,"machineL3Misses":1.2e7}}`
	f.Add("", []byte(valid+"\n"))
	f.Add("stream-key", []byte(valid+"\n"+valid+"\n"))
	f.Add("", []byte(keyed+"\n"+keyed+"\n"))                                // duplicate key mid-stream
	f.Add("", []byte("{not json\n\n\n"+valid+"\n"))                         // malformed + blanks
	f.Add("", []byte(`{"language":"py","memoryMB":64}`+"\n"))               // no tenant
	f.Add("", []byte(`{"tenant":"a","minute":-3}`+"\n"))                    // negative minute
	f.Add("", []byte(`{"tenant":"a","minute":4294967296}`+"\n"))            // minute past the WAL bound
	f.Add("k", []byte(strings.Repeat("\n", fuzzMaxStreamLines+10)))         // line-cap flood
	f.Add("", []byte(valid+"\n"+strings.Repeat("x", 4096)+"\n"))            // oversized line
	f.Add("", []byte("\r\n \t\r\n"+valid+"\r\n"))                           // CRLF + whitespace lines
	f.Add("", []byte(`{"tenant":"acme","memoryMB":-5,"tPrivate":-1}`+"\n")) // pricing-level reject

	f.Fuzz(func(t *testing.T, streamKey string, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v3/usage", bytes.NewReader(body))
		if streamKey != "" {
			req.Header.Set("Idempotency-Key", streamKey)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		var out UsageStreamResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("undecodable response: %v", err)
		}

		// Every non-blank line read lands in exactly one bucket.
		if out.Lines != out.Accepted+out.Duplicates+out.Rejected+out.Dropped {
			t.Fatalf("lines %d != accepted %d + duplicates %d + rejected %d + dropped %d",
				out.Lines, out.Accepted, out.Duplicates, out.Rejected, out.Dropped)
		}
		if len(out.Errors) > DefaultMaxStreamErrors {
			t.Fatalf("%d errors exceed the cap %d", len(out.Errors), DefaultMaxStreamErrors)
		}
		// Errors come back in stream order, one per line, 1-based.
		last := 0
		errLines := map[int]bool{}
		for _, e := range out.Errors {
			if e.Line <= last {
				t.Fatalf("errors out of order: line %d after %d", e.Line, last)
			}
			last = e.Line
			errLines[e.Line] = true
		}

		if out.StreamError != "" {
			// Reading stopped early (oversized line or line cap); the
			// per-line ground truth below assumes a fully-read stream.
			return
		}

		// Recompute the parse-level ground truth the same way the scanner
		// sees the body: split on \n, drop the phantom token after a
		// trailing newline, strip one trailing \r, blank after TrimSpace is
		// skipped.
		lines := strings.Split(string(body), "\n")
		if len(lines) > 0 && lines[len(lines)-1] == "" {
			lines = lines[:len(lines)-1]
		}
		nonBlank := 0
		expectReject := map[int]bool{}
		for i, line := range lines {
			trimmed := strings.TrimSpace(strings.TrimSuffix(line, "\r"))
			if trimmed == "" {
				continue
			}
			nonBlank++
			var rec UsageRecord
			if err := json.Unmarshal([]byte(trimmed), &rec); err != nil {
				expectReject[i+1] = true
				continue
			}
			if rec.Tenant == "" || rec.Minute < 0 || int64(rec.Minute) > ledger.MaxMinute {
				expectReject[i+1] = true
			}
		}
		if out.Lines != nonBlank {
			t.Fatalf("lines = %d, body has %d non-blank lines", out.Lines, nonBlank)
		}
		if out.Rejected+out.Dropped < len(expectReject) {
			t.Fatalf("rejected %d + dropped %d < %d parse-level invalid lines",
				out.Rejected, out.Dropped, len(expectReject))
		}
		// Below the error cap, every parse-level invalid line must be
		// reported under its own number (pricing-level rejects may add
		// more; they never displace these while the list has room).
		if len(out.Errors) < DefaultMaxStreamErrors {
			for line := range expectReject {
				if !errLines[line] {
					t.Fatalf("invalid line %d missing from errors %v", line, out.Errors)
				}
			}
		}
	})
}
