package workload

import (
	"encoding/json"
	"fmt"
)

// specJSON is the wire form of a Spec. Languages and patterns are encoded as
// their string names so files stay readable and stable across refactors.
type specJSON struct {
	Name      string      `json:"name"`
	Abbr      string      `json:"abbr"`
	Language  string      `json:"language"`
	Suite     string      `json:"suite,omitempty"`
	Reference bool        `json:"reference,omitempty"`
	MemoryMB  int         `json:"memoryMB"`
	Startup   []phaseJSON `json:"startup,omitempty"`
	Body      []phaseJSON `json:"body"`
}

type phaseJSON struct {
	Name      string  `json:"name"`
	Instr     float64 `json:"instr"`
	CPIBase   float64 `json:"cpiBase"`
	L2MPKI    float64 `json:"l2mpki"`
	WSBlocks  int     `json:"wsBlocks"`
	Pattern   string  `json:"pattern"`
	MLP       float64 `json:"mlp"`
	DirtyFrac float64 `json:"dirtyFrac,omitempty"`
	Reuse     float64 `json:"reuse,omitempty"`
}

// ParseLanguage converts a language suffix ("py", "nj", "go") to a Language.
func ParseLanguage(s string) (Language, error) {
	for _, l := range Languages() {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown language %q", s)
}

// ParsePattern converts a pattern name ("hot", "scan", "mixed") to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	for _, p := range []Pattern{Hot, Scan, Mixed} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown pattern %q", s)
}

func toJSON(s *Spec) specJSON {
	out := specJSON{
		Name: s.Name, Abbr: s.Abbr, Language: s.Language.String(),
		Suite: s.Suite, Reference: s.Reference, MemoryMB: s.MemoryMB,
	}
	for _, ph := range s.Startup {
		out.Startup = append(out.Startup, phaseToJSON(ph))
	}
	for _, ph := range s.Body {
		out.Body = append(out.Body, phaseToJSON(ph))
	}
	return out
}

func phaseToJSON(p Phase) phaseJSON {
	return phaseJSON{
		Name: p.Name, Instr: p.Instr, CPIBase: p.CPIBase, L2MPKI: p.L2MPKI,
		WSBlocks: p.WSBlocks, Pattern: p.Pattern.String(), MLP: p.MLP,
		DirtyFrac: p.DirtyFrac, Reuse: p.Reuse,
	}
}

func fromJSON(in specJSON) (*Spec, error) {
	lang, err := ParseLanguage(in.Language)
	if err != nil {
		return nil, fmt.Errorf("spec %q: %w", in.Abbr, err)
	}
	s := &Spec{
		Name: in.Name, Abbr: in.Abbr, Language: lang,
		Suite: in.Suite, Reference: in.Reference, MemoryMB: in.MemoryMB,
	}
	for _, ph := range in.Startup {
		p, err := phaseFromJSON(ph)
		if err != nil {
			return nil, fmt.Errorf("spec %q startup: %w", in.Abbr, err)
		}
		s.Startup = append(s.Startup, p)
	}
	for _, ph := range in.Body {
		p, err := phaseFromJSON(ph)
		if err != nil {
			return nil, fmt.Errorf("spec %q body: %w", in.Abbr, err)
		}
		s.Body = append(s.Body, p)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func phaseFromJSON(in phaseJSON) (Phase, error) {
	pat, err := ParsePattern(in.Pattern)
	if err != nil {
		return Phase{}, err
	}
	return Phase{
		Name: in.Name, Instr: in.Instr, CPIBase: in.CPIBase, L2MPKI: in.L2MPKI,
		WSBlocks: in.WSBlocks, Pattern: pat, MLP: in.MLP,
		DirtyFrac: in.DirtyFrac, Reuse: in.Reuse,
	}, nil
}

// EncodeSpecs serialises function specs as indented JSON, the interchange
// format for custom catalogs (downstream users model their own functions and
// feed them to the platform and calibrator).
func EncodeSpecs(specs []*Spec) ([]byte, error) {
	out := make([]specJSON, len(specs))
	for i, s := range specs {
		out[i] = toJSON(s)
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodeSpecs parses specs produced by EncodeSpecs (or written by hand),
// validating every entry.
func DecodeSpecs(data []byte) ([]*Spec, error) {
	var raw []specJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("workload: decoding specs: %w", err)
	}
	seen := map[string]bool{}
	out := make([]*Spec, 0, len(raw))
	for _, r := range raw {
		s, err := fromJSON(r)
		if err != nil {
			return nil, err
		}
		if seen[s.Abbr] {
			return nil, fmt.Errorf("workload: duplicate abbreviation %q", s.Abbr)
		}
		seen[s.Abbr] = true
		out = append(out, s)
	}
	return out, nil
}
