package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 27 {
		t.Fatalf("catalog has %d functions, Table 1 has 27", len(cat))
	}
	refs := 0
	byLang := map[Language]int{}
	seen := map[string]bool{}
	for _, s := range cat {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Abbr, err)
		}
		if seen[s.Abbr] {
			t.Errorf("duplicate abbreviation %q", s.Abbr)
		}
		seen[s.Abbr] = true
		if s.Reference {
			refs++
		}
		byLang[s.Language]++
		if !strings.HasSuffix(s.Abbr, "-"+s.Language.String()) {
			t.Errorf("%s: abbreviation suffix does not match language %s", s.Abbr, s.Language)
		}
	}
	if refs != 13 {
		t.Errorf("reference functions = %d, Table 1 marks 13", refs)
	}
	if byLang[Python] != 16 || byLang[NodeJS] != 5 || byLang[Go] != 6 {
		t.Errorf("language mix = py:%d nj:%d go:%d, want 16/5/6",
			byLang[Python], byLang[NodeJS], byLang[Go])
	}
}

func TestReferenceTestSetPartition(t *testing.T) {
	refs, tests := References(), TestSet()
	if len(refs) != 13 || len(tests) != 14 {
		t.Fatalf("partition = %d refs + %d tests, want 13 + 14", len(refs), len(tests))
	}
	all := map[string]bool{}
	for _, s := range append(append([]*Spec{}, refs...), tests...) {
		all[s.Abbr] = true
	}
	if len(all) != 27 {
		t.Errorf("partition does not cover catalog: %d unique", len(all))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i-1].Abbr >= refs[i].Abbr {
			t.Errorf("References not sorted at %d", i)
		}
	}
}

func TestByAbbr(t *testing.T) {
	m := ByAbbr()
	if len(m) != 27 {
		t.Fatalf("ByAbbr has %d entries", len(m))
	}
	s, ok := m["pager-py"]
	if !ok || s.Name != "Graph Rank" {
		t.Errorf("pager-py lookup = %+v, %v", s, ok)
	}
}

func TestMemoryIntensiveSelection(t *testing.T) {
	mi := MemoryIntensive()
	if len(mi) != 8 {
		t.Fatalf("memory-intensive set = %d functions, paper picks 8", len(mi))
	}
	// The selection rule is "most L2 misses": every selected function must
	// produce at least as many body L2 misses as every excluded one.
	selected := map[string]bool{}
	minSelected := -1.0
	for _, s := range mi {
		selected[s.Abbr] = true
		m := bodyMisses(s)
		if minSelected < 0 || m < minSelected {
			minSelected = m
		}
	}
	for _, s := range Catalog() {
		if !selected[s.Abbr] && bodyMisses(s) > minSelected {
			t.Errorf("%s produces more L2 misses than a selected function", s.Abbr)
		}
	}
	// The catalog's heaviest miss producers must be in (pager-py tops the
	// catalog by construction).
	if !selected["pager-py"] || !selected["mst-py"] {
		t.Errorf("selection missing the graph kernels: %v", selected)
	}
}

func TestStartupSharedWithinLanguage(t *testing.T) {
	// All functions of one language must share an identical startup — the
	// property the Litmus test relies on.
	perLang := map[Language][]*Spec{}
	for _, s := range Catalog() {
		perLang[s.Language] = append(perLang[s.Language], s)
	}
	for lang, specs := range perLang {
		first := specs[0].Startup
		for _, s := range specs[1:] {
			if len(s.Startup) != len(first) {
				t.Fatalf("%s: startup length differs within language %s", s.Abbr, lang)
			}
			for i := range first {
				if s.Startup[i] != first[i] {
					t.Errorf("%s: startup phase %d differs from %s", s.Abbr, i, specs[0].Abbr)
				}
			}
		}
	}
}

func TestStartupScalesMatchPaper(t *testing.T) {
	// Approximate solo durations at 2.8 GHz (CPI ≈ CPIBase + small stall
	// component): Go shortest, Python mid, Node longest (Fig. 6: ≈6 / 19 /
	// 97 ms). Check ordering and rough instruction budgets.
	py := (&Spec{Startup: StartupPhases(Python), Body: body(1, 1, 1, 1, Hot, 2, 0), Abbr: "x", MemoryMB: 1}).StartupInstr()
	nj := (&Spec{Startup: StartupPhases(NodeJS), Body: body(1, 1, 1, 1, Hot, 2, 0), Abbr: "x", MemoryMB: 1}).StartupInstr()
	gg := (&Spec{Startup: StartupPhases(Go), Body: body(1, 1, 1, 1, Hot, 2, 0), Abbr: "x", MemoryMB: 1}).StartupInstr()
	if !(gg < py && py < nj) {
		t.Errorf("startup instruction ordering go(%v) < py(%v) < nj(%v) violated", gg, py, nj)
	}
	if py != 45e6 {
		t.Errorf("python startup = %v instructions; probe cap is 45e6 and should cover it exactly", py)
	}
	if gg >= ProbeInstrCap {
		t.Errorf("go startup %v should be below the probe cap", gg)
	}
}

func TestLanguageString(t *testing.T) {
	if Python.String() != "py" || NodeJS.String() != "nj" || Go.String() != "go" {
		t.Error("language suffixes wrong")
	}
	if got := Language(99).String(); got != "lang(99)" {
		t.Errorf("unknown language = %q", got)
	}
	if len(Languages()) != 3 {
		t.Error("Languages() must list 3 runtimes")
	}
}

func TestPatternReuse(t *testing.T) {
	if !(Scan.Reuse() < Mixed.Reuse() && Mixed.Reuse() < Hot.Reuse()) {
		t.Error("pattern reuse ordering violated")
	}
	for _, p := range []Pattern{Hot, Scan, Mixed, Pattern(9)} {
		r := p.Reuse()
		if r < 0 || r > 1 {
			t.Errorf("reuse(%v) = %v outside [0,1]", p, r)
		}
	}
	if Hot.String() != "hot" || Scan.String() != "scan" || Mixed.String() != "mixed" {
		t.Error("pattern names wrong")
	}
}

func TestSpecValidateErrors(t *testing.T) {
	good := Catalog()[0]
	bad := *good
	bad.Abbr = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty abbr accepted")
	}
	bad = *good
	bad.MemoryMB = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero memory accepted")
	}
	bad = *good
	bad.Body = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing body accepted")
	}
	bad = *good
	bad.Body = body(-1, 1, 1, 1, Hot, 2, 0)
	if err := bad.Validate(); err == nil {
		t.Error("negative instructions accepted")
	}
	bad = *good
	bad.Body = body(1, 1, 1, 1, Hot, 0.5, 0)
	if err := bad.Validate(); err == nil {
		t.Error("MLP < 1 accepted")
	}
	bad = *good
	bad.Body = body(1, 1, -1, 1, Hot, 2, 0)
	if err := bad.Validate(); err == nil {
		t.Error("negative L2MPKI accepted")
	}
	bad = *good
	bad.Body = body(1, 1, 1, 1, Hot, 2, 1.5)
	if err := bad.Validate(); err == nil {
		t.Error("DirtyFrac > 1 accepted")
	}
}

func TestWithBodyScale(t *testing.T) {
	s := ByAbbr()["pager-py"]
	half := s.WithBodyScale(0.5)
	//litmus:float-eq-ok differential: scaling must leave the startup term untouched
	if half.StartupInstr() != s.StartupInstr() {
		t.Error("scaling must not touch the startup (probe window)")
	}
	wantBody := s.TotalInstr() - s.StartupInstr()
	gotBody := half.TotalInstr() - half.StartupInstr()
	//litmus:float-eq-ok scaling by 0.5 is exact in binary floating point
	if gotBody != wantBody/2 {
		t.Errorf("scaled body = %v, want %v", gotBody, wantBody/2)
	}
	// Original untouched.
	if s.Body[0].Instr != 180e6 {
		t.Errorf("original mutated: %v", s.Body[0].Instr)
	}
}

func TestWithBodyScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithBodyScale(0) should panic")
		}
	}()
	Catalog()[0].WithBodyScale(0)
}

func TestPhasesConcatenation(t *testing.T) {
	s := ByAbbr()["fib-go"]
	ph := s.Phases()
	if len(ph) != len(s.Startup)+len(s.Body) {
		t.Fatalf("Phases len = %d", len(ph))
	}
	if ph[0] != s.Startup[0] || ph[len(ph)-1] != s.Body[len(s.Body)-1] {
		t.Error("Phases order wrong")
	}
}

func TestSamplerStaysInWindow(t *testing.T) {
	f := func(seed int64, wsRaw uint8) bool {
		ws := int(wsRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewSampler(1<<32, ws)
		for i := 0; i < 200; i++ {
			for _, p := range []Pattern{Hot, Scan, Mixed} {
				b := s.Next(p, rng)
				if b < 1<<32 || b >= 1<<32+uint64(ws) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSamplerScanCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSampler(0, 4)
	seen := map[uint64]int{}
	for i := 0; i < 400; i++ {
		seen[s.Next(Scan, rng)]++
	}
	if len(seen) != 4 {
		t.Fatalf("scan covered %d blocks, want 4", len(seen))
	}
	for b, n := range seen {
		if n != 100 {
			t.Errorf("scan block %d visited %d times, want uniform 100", b, n)
		}
	}
}

func TestSamplerHotIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSampler(0, 100)
	lowHalf := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if s.Next(Hot, rng) < 50 {
			lowHalf++
		}
	}
	// u² concentrates below 0.5 with probability sqrt(0.5) ≈ 0.707.
	frac := float64(lowHalf) / draws
	if frac < 0.65 || frac > 0.77 {
		t.Errorf("hot pattern low-half fraction = %v, want ≈0.707", frac)
	}
}

func TestSamplerDegenerateWS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSampler(0, 0) // clamps to 1 block
	for i := 0; i < 10; i++ {
		if got := s.Next(Hot, rng); got != 0 {
			t.Fatalf("degenerate sampler returned %d", got)
		}
	}
}
