package workload

import (
	"fmt"
	"sort"
)

// ProbeInstrCap is the Litmus probe window: the paper measures the first 45
// million instructions of the runtime startup (§7.1). Startups shorter than
// the cap (Go) are measured in full.
const ProbeInstrCap = 45e6

// StartupPhases returns the runtime-initialisation phase model for a
// language. All functions of one language share this prefix byte-for-byte —
// the property the Litmus test exploits (paper §6, Fig. 6). The lengths
// reproduce the paper's observed startup scales: Go ≈6 ms, Python ≈19 ms,
// Node.js ≈97 ms on a 2.8 GHz core.
func StartupPhases(lang Language) []Phase {
	switch lang {
	case Python:
		return []Phase{
			// Interpreter image + shared libraries: bursty reads, poor IPC.
			{Name: "py-interp-load", Instr: 12e6, CPIBase: 1.10, L2MPKI: 10, WSBlocks: 192, Pattern: Mixed, MLP: 3.0, DirtyFrac: 0.10},
			// Module imports: dictionary-heavy, moderate locality.
			{Name: "py-imports", Instr: 18e6, CPIBase: 1.00, L2MPKI: 7, WSBlocks: 160, Pattern: Hot, MLP: 2.5, DirtyFrac: 0.15},
			// Bytecode compile of the handler: mostly private resources.
			{Name: "py-compile", Instr: 15e6, CPIBase: 0.90, L2MPKI: 3.5, WSBlocks: 96, Pattern: Hot, MLP: 2.0, DirtyFrac: 0.20},
		}
	case NodeJS:
		return []Phase{
			// V8 isolate + snapshot deserialisation.
			{Name: "nj-v8-init", Instr: 40e6, CPIBase: 1.20, L2MPKI: 8, WSBlocks: 256, Pattern: Mixed, MLP: 3.0, DirtyFrac: 0.15},
			// Baseline JIT warmup of core libraries.
			{Name: "nj-jit-warmup", Instr: 90e6, CPIBase: 1.30, L2MPKI: 5.5, WSBlocks: 224, Pattern: Hot, MLP: 2.5, DirtyFrac: 0.20},
			// require() graph resolution and module evaluation.
			{Name: "nj-module-load", Instr: 60e6, CPIBase: 1.10, L2MPKI: 6.5, WSBlocks: 192, Pattern: Mixed, MLP: 3.0, DirtyFrac: 0.15},
		}
	case Go:
		return []Phase{
			// Static binary: runtime + GC initialisation.
			{Name: "go-runtime-init", Instr: 7e6, CPIBase: 0.80, L2MPKI: 7, WSBlocks: 64, Pattern: Mixed, MLP: 3.0, DirtyFrac: 0.10},
			// Package init functions.
			{Name: "go-pkg-init", Instr: 10e6, CPIBase: 0.75, L2MPKI: 4.5, WSBlocks: 48, Pattern: Hot, MLP: 2.5, DirtyFrac: 0.10},
		}
	default:
		panic(fmt.Sprintf("workload: unknown language %d", int(lang)))
	}
}

// body is shorthand for a single-phase body.
func body(mInstr, cpi, mpki float64, ws int, p Pattern, mlp, dirty float64) []Phase {
	return []Phase{{
		Name: "body", Instr: mInstr * 1e6, CPIBase: cpi, L2MPKI: mpki,
		WSBlocks: ws, Pattern: p, MLP: mlp, DirtyFrac: dirty,
	}}
}

// spec builds a catalog entry, attaching the language startup.
func spec(name, abbr string, lang Language, suite string, ref bool, memMB int, b []Phase) *Spec {
	return &Spec{
		Name: name, Abbr: abbr, Language: lang, Suite: suite,
		Reference: ref, MemoryMB: memMB,
		Startup: StartupPhases(lang), Body: b,
	}
}

// Catalog returns the paper's Table 1: 27 serverless functions across three
// languages, with the 13 reference functions marked. Body parameters are
// calibrated so each function's solo T_shared share of execution time
// matches Fig. 4 (annotated per entry).
//
// The returned specs are fresh copies; callers may mutate them.
func Catalog() []*Spec {
	return []*Spec{
		// ---- SeBS (Python) ----------------------------------------------
		// ~9% shared: streaming block cipher over request payloads.
		spec("AES", "aes-py", Python, "Other", false, 256,
			body(120, 0.90, 2.6, 256, Scan, 6.0, 0.30)),
		// ~0.5% shared: recursive arithmetic, tiny footprint.
		spec("Fibonacci", "fib-py", Python, "Other", true, 128,
			body(90, 0.95, 0.23, 10, Hot, 2.0, 0.05)),
		// ~7% shared: HTML templating over session dictionaries.
		spec("Dyn HTML", "dyn-py", Python, "SeBs", false, 256,
			body(80, 1.00, 3.6, 128, Hot, 2.0, 0.15)),
		// ~13% shared: image decode + resize pipeline.
		spec("Thumbnail", "thum-py", Python, "SeBs", true, 512,
			body(150, 1.05, 5.5, 384, Mixed, 4.0, 0.25)),
		// ~8.5% shared: dictionary compression, streaming window.
		spec("Compression", "compre-py", Python, "SeBs", false, 512,
			body(140, 1.00, 3.1, 384, Scan, 7.0, 0.30)),
		// ~15% shared: CNN inference, weights + activations.
		spec("Image Recogn", "recogn-py", Python, "SeBs", false, 1024,
			body(220, 1.00, 4.6, 320, Mixed, 3.0, 0.20)),
		// ~22% shared: PageRank — pointer-chasing over a large graph.
		spec("Graph Rank", "pager-py", Python, "SeBs", false, 512,
			body(180, 0.90, 8.5, 448, Hot, 1.4, 0.15)),
		// ~19% shared: minimum spanning tree, irregular accesses.
		spec("Graph Mst", "mst-py", Python, "SeBs", false, 512,
			body(160, 0.85, 7.1, 320, Hot, 1.5, 0.15)),
		// ~17% shared: breadth-first search, frontier-driven.
		spec("Graph Bfs", "bfs-py", Python, "SeBs", true, 512,
			body(140, 0.85, 6.6, 384, Hot, 1.6, 0.15)),
		// ~12% shared: DNA sequence visualisation.
		spec("DNA Visual", "visual-py", Python, "SeBs", true, 512,
			body(120, 1.00, 4.8, 256, Mixed, 4.0, 0.20)),
		// ~4% shared: token verification, small hash state.
		spec("Authen", "auth-py", Python, "Other", true, 128,
			body(60, 0.95, 1.9, 18, Hot, 2.0, 0.10)),
		// ---- FunctionBench (Python) -------------------------------------
		// ~10% shared: template rendering (Chameleon).
		spec("Chameleon", "chame-py", Python, "FunctionBench", false, 256,
			body(100, 0.95, 5.0, 128, Hot, 2.0, 0.15)),
		// ~0.04% shared: floating-point kernel, register-resident.
		spec("FloatOp", "float-py", Python, "FunctionBench", false, 128,
			body(160, 1.00, 0.02, 4, Hot, 2.0, 0.05)),
		// ~8% shared: gzip over a streamed file.
		spec("Gzip", "gzip-py", Python, "FunctionBench", true, 256,
			body(130, 0.90, 2.3, 512, Scan, 6.0, 0.30)),
		// ~17% shared: random-offset reads over a mapped file buffer.
		spec("RandDisk", "randDisk-py", Python, "FunctionBench", true, 512,
			body(110, 1.10, 4.0, 512, Mixed, 2.0, 0.25)),
		// ~10% shared: sequential reads, prefetch-friendly.
		spec("SequenDisk", "seqDisk-py", Python, "FunctionBench", false, 512,
			body(120, 0.95, 4.1, 1024, Scan, 8.0, 0.30)),
		// ---- Node.js ----------------------------------------------------
		// ~7.5% shared.
		spec("AES", "aes-nj", NodeJS, "Other", true, 256,
			body(110, 1.00, 2.3, 192, Scan, 6.0, 0.30)),
		// ~5% shared.
		spec("Authen", "auth-nj", NodeJS, "Other", false, 128,
			body(70, 1.00, 2.5, 24, Hot, 2.0, 0.10)),
		// ~17% shared: the paper singles fib-nj out as memory-intensive
		// (§5.2) — V8 allocates heavily for its recursion frames.
		spec("Fibonacci", "fib-nj", NodeJS, "Other", true, 128,
			body(100, 0.90, 7.0, 256, Hot, 1.6, 0.20)),
		// ~9% shared: currency conversion microservice.
		spec("Currency", "cur-nj", NodeJS, "Online Boutique", true, 128,
			body(80, 0.90, 2.7, 96, Mixed, 3.5, 0.15)),
		// ~7% shared: payment validation microservice.
		spec("Payment", "pay-nj", NodeJS, "Online Boutique", false, 128,
			body(70, 0.90, 3.2, 48, Hot, 2.0, 0.15)),
		// ---- Go ---------------------------------------------------------
		// ~6% shared.
		spec("AES", "aes-go", Go, "Other", true, 256,
			body(130, 0.85, 1.8, 192, Scan, 7.0, 0.30)),
		// ~3.5% shared.
		spec("Authen", "auth-go", Go, "Other", false, 128,
			body(50, 0.80, 1.4, 12, Hot, 2.0, 0.10)),
		// ~1% shared.
		spec("Fibonacci", "fib-go", Go, "Other", true, 128,
			body(120, 0.90, 0.43, 8, Hot, 2.0, 0.05)),
		// ~8% shared: geo search over spatial index.
		spec("Geo", "geo-go", Go, "Hotel Reservation", false, 256,
			body(90, 0.90, 2.1, 128, Mixed, 3.0, 0.15)),
		// ~11% shared: profile lookup over wide records.
		spec("Profile", "profile-go", Go, "Hotel Reservation", true, 256,
			body(110, 0.95, 3.1, 192, Mixed, 3.0, 0.20)),
		// ~14% shared: rate computation, cache-resident tables under churn.
		spec("Rate", "rate-go", Go, "Hotel Reservation", false, 256,
			body(100, 0.85, 5.9, 224, Hot, 1.8, 0.15)),
	}
}

// ProbeSpec returns a minimal function of the given language: the full
// language startup followed by a negligible body. Providers use it to run
// pure Litmus tests — measuring the startup under a machine state without
// executing meaningful tenant code.
func ProbeSpec(lang Language) *Spec {
	return &Spec{
		Name:     "probe",
		Abbr:     "probe-" + lang.String(),
		Language: lang,
		Suite:    "litmus",
		MemoryMB: 128,
		Startup:  StartupPhases(lang),
		Body: []Phase{{
			Name: "noop", Instr: 1e5, CPIBase: 1.0, L2MPKI: 0,
			WSBlocks: 1, Pattern: Hot, MLP: 2.0,
		}},
	}
}

// ByAbbr returns the catalog indexed by abbreviation.
func ByAbbr() map[string]*Spec {
	m := make(map[string]*Spec)
	for _, s := range Catalog() {
		m[s.Abbr] = s
	}
	return m
}

// References returns the 13 reference functions (* in Table 1), sorted by
// abbreviation for determinism.
func References() []*Spec {
	var out []*Spec
	for _, s := range Catalog() {
		if s.Reference {
			out = append(out, s)
		}
	}
	sortSpecs(out)
	return out
}

// TestSet returns the 14 non-reference functions the paper prices in its
// evaluation figures, sorted by abbreviation.
func TestSet() []*Spec {
	var out []*Spec
	for _, s := range Catalog() {
		if !s.Reference {
			out = append(out, s)
		}
	}
	sortSpecs(out)
	return out
}

func sortSpecs(ss []*Spec) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Abbr < ss[j].Abbr })
}

// MemoryIntensive returns the 8 functions that "produce the most L2 cache
// misses among the tested functions", the selection rule the paper applies
// for its heavy-congestion study (§8, Fig. 17 — on the authors' machine the
// rule picked aes-py, compre-py, thum-py, bfs-py, auth-py, fib-go, geo-go
// and profile-go; here it is evaluated against this catalog's profiles, so
// the procedure rather than the name list is what reproduces).
func MemoryIntensive() []*Spec {
	cat := Catalog()
	// Rank by body L2-miss production: L2MPKI weighted by instruction count.
	sort.Slice(cat, func(i, j int) bool {
		return bodyMisses(cat[i]) > bodyMisses(cat[j])
	})
	out := cat[:8]
	sortSpecs(out)
	return out
}

// bodyMisses estimates a spec's total body L2 misses.
func bodyMisses(s *Spec) float64 {
	var total float64
	for _, ph := range s.Body {
		total += ph.Instr * ph.L2MPKI
	}
	return total
}
