package workload

import (
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := Catalog()
	data, err := EncodeSpecs(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip lost specs: %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		a, b := orig[i], back[i]
		if a.Abbr != b.Abbr || a.Language != b.Language || a.Reference != b.Reference ||
			a.MemoryMB != b.MemoryMB || a.Suite != b.Suite {
			t.Errorf("%s: header fields changed: %+v vs %+v", a.Abbr, a, b)
		}
		if len(a.Startup) != len(b.Startup) || len(a.Body) != len(b.Body) {
			t.Fatalf("%s: phase counts changed", a.Abbr)
		}
		for j := range a.Body {
			if a.Body[j] != b.Body[j] {
				t.Errorf("%s body[%d]: %+v vs %+v", a.Abbr, j, a.Body[j], b.Body[j])
			}
		}
		for j := range a.Startup {
			if a.Startup[j] != b.Startup[j] {
				t.Errorf("%s startup[%d] changed", a.Abbr, j)
			}
		}
	}
}

func TestEncodeReadableNames(t *testing.T) {
	data, err := EncodeSpecs([]*Spec{ByAbbr()["pager-py"]})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"language": "py"`, `"pattern": "hot"`, `"abbr": "pager-py"`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded JSON missing %s:\n%s", want, s)
		}
	}
}

func TestDecodeSpecsErrors(t *testing.T) {
	if _, err := DecodeSpecs([]byte("{")); err == nil {
		t.Error("garbage accepted")
	}
	bad := `[{"name":"x","abbr":"x-py","language":"rust","memoryMB":128,
		"body":[{"name":"b","instr":1e6,"cpiBase":1,"l2mpki":1,"wsBlocks":1,"pattern":"hot","mlp":2}]}]`
	if _, err := DecodeSpecs([]byte(bad)); err == nil {
		t.Error("unknown language accepted")
	}
	bad = `[{"name":"x","abbr":"x-py","language":"py","memoryMB":128,
		"body":[{"name":"b","instr":1e6,"cpiBase":1,"l2mpki":1,"wsBlocks":1,"pattern":"spiral","mlp":2}]}]`
	if _, err := DecodeSpecs([]byte(bad)); err == nil {
		t.Error("unknown pattern accepted")
	}
	bad = `[{"name":"x","abbr":"x-py","language":"py","memoryMB":0,
		"body":[{"name":"b","instr":1e6,"cpiBase":1,"l2mpki":1,"wsBlocks":1,"pattern":"hot","mlp":2}]}]`
	if _, err := DecodeSpecs([]byte(bad)); err == nil {
		t.Error("invalid spec (zero memory) accepted")
	}
	dup := `[
	 {"name":"x","abbr":"x-py","language":"py","memoryMB":128,
	  "body":[{"name":"b","instr":1e6,"cpiBase":1,"l2mpki":1,"wsBlocks":1,"pattern":"hot","mlp":2}]},
	 {"name":"y","abbr":"x-py","language":"py","memoryMB":128,
	  "body":[{"name":"b","instr":1e6,"cpiBase":1,"l2mpki":1,"wsBlocks":1,"pattern":"hot","mlp":2}]}
	]`
	if _, err := DecodeSpecs([]byte(dup)); err == nil {
		t.Error("duplicate abbreviation accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	for _, l := range Languages() {
		got, err := ParseLanguage(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLanguage(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLanguage("cobol"); err == nil {
		t.Error("unknown language parsed")
	}
	for _, p := range []Pattern{Hot, Scan, Mixed} {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePattern("zigzag"); err == nil {
		t.Error("unknown pattern parsed")
	}
}

func TestDecodedSpecRunsOnEngine(t *testing.T) {
	// A hand-written custom function must be directly usable.
	custom := `[{"name":"Custom ETL","abbr":"etl-go","language":"go","memoryMB":256,
	  "body":[{"name":"transform","instr":5e6,"cpiBase":0.9,"l2mpki":3,"wsBlocks":64,"pattern":"mixed","mlp":3}]}]`
	specs, err := DecodeSpecs([]byte(custom))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Abbr != "etl-go" {
		t.Fatalf("decoded %+v", specs)
	}
	if specs[0].TotalInstr() != 5e6 {
		t.Errorf("total instr = %v", specs[0].TotalInstr())
	}
}
