// Package workload models the serverless functions the paper evaluates.
//
// A function is a sequence of phases. Each phase is characterised the way an
// interval simulator sees code: a base CPI (covering issue width, branch and
// private-cache behaviour), an L2 miss rate (L2MPKI — the demand traffic
// leaving the private domain), an L3 footprint, an access pattern, and a
// memory-level-parallelism factor. These are the only knobs that matter to
// Litmus pricing, because the PMU events it consumes (cycles, L2-miss stall
// cycles, L3 misses) are fully determined by them plus machine congestion.
//
// The catalog reproduces Table 1 of the paper: 27 functions across SeBS,
// FunctionBench, DeathStarBench Hotel Reservation, Online Boutique and the
// AWS authorizer samples, written in Python, Node.js and Go, 13 of which
// (* in the table) serve as the provider's reference set. Per-function
// parameters are calibrated so the solo T_private/T_shared decomposition
// matches the spread of Fig. 4 (float-py ≈99.9% private … pager-py ≈58%).
package workload

import (
	"fmt"
	"math/rand"
)

// Language identifies the function's runtime, which determines its startup
// phase model (paper §2, Fig. 6).
type Language int

// Supported language runtimes.
const (
	Python Language = iota
	NodeJS
	Go
)

// String returns the table-style suffix for the language (py, nj, go).
func (l Language) String() string {
	switch l {
	case Python:
		return "py"
	case NodeJS:
		return "nj"
	case Go:
		return "go"
	default:
		return fmt.Sprintf("lang(%d)", int(l))
	}
}

// Languages lists all supported runtimes in display order.
func Languages() []Language { return []Language{Python, NodeJS, Go} }

// Pattern describes how a phase walks its L3 footprint.
type Pattern int

// Access patterns.
const (
	// Hot re-references a resident working set (graph kernels, interpreters).
	Hot Pattern = iota
	// Scan streams through data with little temporal reuse (compression,
	// encryption, sequential I/O buffers).
	Scan
	// Mixed blends resident structures with streaming data (image and ML
	// pipelines).
	Mixed
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Hot:
		return "hot"
	case Scan:
		return "scan"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Reuse returns the fraction of a phase's L3 accesses that target blocks the
// phase keeps live (and therefore can hit, if the blocks survive co-runner
// evictions). The complement is streaming traffic that always misses.
func (p Pattern) Reuse() float64 {
	switch p {
	case Hot:
		return 0.97
	case Scan:
		return 0.08
	case Mixed:
		return 0.60
	default:
		return 0.5
	}
}

// FillProb returns the probability that a miss by this pattern installs its
// block in the shared cache. Modern LLCs use adaptive insertion that resists
// streaming pollution, so scans install with low probability while resident
// working sets install always.
func (p Pattern) FillProb() float64 {
	switch p {
	case Hot:
		return 1.0
	case Scan:
		return 0.15
	case Mixed:
		return 0.50
	default:
		return 0.5
	}
}

// Phase is one homogeneous segment of a function's execution.
type Phase struct {
	// Name labels the phase in traces ("interp-load", "body", …).
	Name string
	// Instr is the phase length in retired instructions.
	Instr float64
	// CPIBase is cycles/instruction excluding L2-miss stalls: issue, branch,
	// L1/L2 hit latency. This is the private-resource cost of the phase.
	CPIBase float64
	// L2MPKI is demand L2 misses per kilo-instruction — the traffic entering
	// the shared domain.
	L2MPKI float64
	// WSBlocks is the phase's L3 footprint in cache blocks.
	WSBlocks int
	// Pattern is the phase's access pattern over that footprint.
	Pattern Pattern
	// MLP is the memory-level parallelism: the average number of outstanding
	// misses that overlap, dividing the effective stall per miss.
	MLP float64
	// DirtyFrac is the fraction of L3 misses that also write back a victim
	// line, inflating DRAM traffic.
	DirtyFrac float64
	// Reuse overrides the pattern's default temporal-reuse fraction when
	// non-zero. Traffic generators use it for perfectly resident (CT-Gen,
	// 1.0) loops.
	Reuse float64
}

// EffectiveReuse returns the phase's reuse fraction: the explicit override
// when set, otherwise the pattern default.
func (p Phase) EffectiveReuse() float64 {
	if p.Reuse > 0 {
		return p.Reuse
	}
	return p.Pattern.Reuse()
}

// Validate reports parameter errors.
func (p Phase) Validate() error {
	switch {
	case p.Instr <= 0:
		return fmt.Errorf("phase %q: non-positive instruction count", p.Name)
	case p.CPIBase <= 0:
		return fmt.Errorf("phase %q: non-positive CPIBase", p.Name)
	case p.L2MPKI < 0:
		return fmt.Errorf("phase %q: negative L2MPKI", p.Name)
	case p.WSBlocks <= 0:
		return fmt.Errorf("phase %q: non-positive working set", p.Name)
	case p.MLP < 1:
		return fmt.Errorf("phase %q: MLP below 1", p.Name)
	case p.DirtyFrac < 0 || p.DirtyFrac > 1:
		return fmt.Errorf("phase %q: DirtyFrac outside [0,1]", p.Name)
	case p.Reuse < 0 || p.Reuse > 1:
		return fmt.Errorf("phase %q: Reuse outside [0,1]", p.Name)
	}
	return nil
}

// Spec is a complete function model.
type Spec struct {
	// Name is the full benchmark name from Table 1 ("Graph Rank").
	Name string
	// Abbr is the table abbreviation ("pager-py"); unique across the catalog.
	Abbr string
	// Language selects the startup model.
	Language Language
	// Suite records provenance (SeBS, FunctionBench, …).
	Suite string
	// Reference marks the 13 functions the provider uses to build
	// performance tables (* in Table 1). Reference functions are never
	// priced in the evaluation; the remaining 14 are the test set.
	Reference bool
	// MemoryMB is the sandbox memory allocation used by the pay-as-you-go
	// bill (commercial price ∝ MemoryMB × duration).
	MemoryMB int
	// Startup is the language runtime initialisation, identical across
	// functions of one language. The Litmus probe measures this prefix.
	Startup []Phase
	// Body is the tenant's own code.
	Body []Phase
}

// Validate reports spec errors.
func (s *Spec) Validate() error {
	if s.Abbr == "" {
		return fmt.Errorf("spec %q: empty abbreviation", s.Name)
	}
	if s.MemoryMB <= 0 {
		return fmt.Errorf("spec %q: non-positive memory", s.Abbr)
	}
	if len(s.Body) == 0 {
		return fmt.Errorf("spec %q: no body phases", s.Abbr)
	}
	for _, ph := range s.Startup {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("spec %q startup: %w", s.Abbr, err)
		}
	}
	for _, ph := range s.Body {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("spec %q body: %w", s.Abbr, err)
		}
	}
	return nil
}

// Phases returns startup followed by body.
func (s *Spec) Phases() []Phase {
	out := make([]Phase, 0, len(s.Startup)+len(s.Body))
	out = append(out, s.Startup...)
	out = append(out, s.Body...)
	return out
}

// TotalInstr returns the total instruction count across all phases.
func (s *Spec) TotalInstr() float64 {
	var t float64
	for _, ph := range s.Phases() {
		t += ph.Instr
	}
	return t
}

// StartupInstr returns the startup prefix length in instructions.
func (s *Spec) StartupInstr() float64 {
	var t float64
	for _, ph := range s.Startup {
		t += ph.Instr
	}
	return t
}

// WithBodyScale returns a copy of the spec whose body phases are scaled to
// frac of their instruction counts (0 < frac). Startups are not scaled here:
// the Litmus probe window must stay comparable across invocations; use
// WithStartupScale (applied uniformly by the platform) to shrink startups
// for reduced-scale experiments.
func (s *Spec) WithBodyScale(frac float64) *Spec {
	if frac <= 0 {
		panic("workload: non-positive body scale")
	}
	c := *s
	c.Body = make([]Phase, len(s.Body))
	copy(c.Body, s.Body)
	for i := range c.Body {
		c.Body[i].Instr *= frac
	}
	return &c
}

// WithStartupScale returns a copy with startup phases scaled to frac of
// their instruction counts. Because the Litmus test compares a startup only
// against the same startup's solo baseline, scaling is sound as long as it
// is applied platform-wide (every probe, baseline and billed run sees the
// same startup); the platform layer guarantees that.
func (s *Spec) WithStartupScale(frac float64) *Spec {
	if frac <= 0 {
		panic("workload: non-positive startup scale")
	}
	c := *s
	c.Startup = make([]Phase, len(s.Startup))
	copy(c.Startup, s.Startup)
	for i := range c.Startup {
		c.Startup[i].Instr *= frac
	}
	return &c
}

// Sampler draws block addresses for a phase's sampled L3 accesses. Each
// context namespaces its blocks by a base offset so sandboxes never share
// cache blocks (address spaces are disjoint, as between real containers).
type Sampler struct {
	base   uint64
	ws     uint64
	cursor uint64
}

// NewSampler creates a sampler over ws blocks at the given namespace base.
func NewSampler(base uint64, ws int) *Sampler {
	if ws <= 0 {
		ws = 1
	}
	return &Sampler{base: base, ws: uint64(ws)}
}

// Next draws the next block address for the given pattern.
func (s *Sampler) Next(p Pattern, rng *rand.Rand) uint64 {
	switch p {
	case Scan:
		s.cursor++
		return s.base + s.cursor%s.ws
	case Hot:
		// Skewed reuse: square a uniform draw so a hot subset dominates,
		// approximating LRU-friendly locality.
		u := rng.Float64()
		return s.base + uint64(u*u*float64(s.ws))%s.ws
	case Mixed:
		if rng.Float64() < 0.5 {
			s.cursor++
			return s.base + s.cursor%s.ws
		}
		u := rng.Float64()
		return s.base + uint64(u*u*float64(s.ws))%s.ws
	default:
		return s.base + uint64(rng.Int63n(int64(s.ws)))
	}
}
