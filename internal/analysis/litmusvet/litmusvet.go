// Package litmusvet assembles the repo's analyzers into a driver usable two
// ways: standalone over `go list` patterns (litmusvet ./...) and as a
// go vet -vettool (implementing the vet .cfg protocol), so CI can run the
// suite with go vet's per-package build caching.
package litmusvet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/closecheck"
	"repro/internal/analysis/fsyncorder"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/moneycmp"
	"repro/internal/analysis/onepath"
)

// Analyzers returns the litmusvet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		closecheck.Analyzer,
		fsyncorder.Analyzer,
		lockcheck.Analyzer,
		moneycmp.Analyzer,
		onepath.Analyzer,
	}
}

// A Finding is one rendered diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// RunPackage applies every analyzer to one loaded package.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	var findings []Finding
	seen := make(map[Finding]bool)
	for _, a := range Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				f := Finding{Pos: fset.Position(d.Pos), Analyzer: a.Name, Message: d.Message}
				if !seen[f] {
					seen[f] = true
					findings = append(findings, f)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Main is the litmusvet entry point; it returns the process exit code
// (0 clean, 1 findings, 2 operational error).
func Main(args []string, stdout, stderr io.Writer) int {
	// The go vet -vettool protocol: -V=full describes the executable for
	// build caching, -flags describes supported flags, and a *.cfg argument
	// is a single compilation unit to analyze.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			return printVersion(stdout)
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetCfg(args[0], stderr)
		}
	}

	// Standalone mode: litmusvet [-no-tests] [patterns...]
	tests := true
	var patterns []string
	for _, a := range args {
		switch {
		case a == "-no-tests" || a == "--no-tests":
			tests = false
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(stderr, "litmusvet: unknown flag %s\nusage: litmusvet [-no-tests] [packages]\n", a)
			return 2
		default:
			patterns = append(patterns, a)
		}
	}
	pkgs, err := load.Packages(".", tests, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "litmusvet: %v\n", err)
		return 2
	}
	exit := 0
	for _, p := range pkgs {
		findings, err := RunPackage(p.Fset, p.Files, p.Pkg, p.Info)
		if err != nil {
			fmt.Fprintf(stderr, "litmusvet: %s: %v\n", p.ImportPath, err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
			exit = 1
		}
	}
	return exit
}

// printVersion implements -V=full: the output must change whenever the tool
// binary changes, or go vet's result caching would serve stale findings.
func printVersion(w io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(w, "litmusvet version devel\n")
		return 0
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(w, "litmusvet version devel\n")
		return 0
	}
	h := sha256.New()
	_, cerr := io.Copy(h, f)
	if err := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(w, "litmusvet version devel\n")
		return 0
	}
	fmt.Fprintf(w, "%s version devel buildID=%x\n", exe, h.Sum(nil))
	return 0
}

// vetConfig mirrors the JSON compilation-unit description go vet writes
// next to each package it checks.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetCfg analyzes the single compilation unit described by cfgPath.
func runVetCfg(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "litmusvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "litmusvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// go vet expects the tool to leave a facts file for dependents; the
	// suite keeps no cross-package facts, so an empty one suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "litmusvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "litmusvet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return base.Import(path)
		}),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "litmusvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	findings, err := RunPackage(fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(stderr, "litmusvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s: %s [%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
