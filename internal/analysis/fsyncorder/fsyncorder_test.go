package fsyncorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fsyncorder"
)

func TestFsyncorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), fsyncorder.Analyzer, "fsyncorder")
}
