// Package fsyncorder enforces the durable ledger's group-commit design
// (PR 5): fsync is never issued while a mutex is held, and within a
// function the WAL append always precedes the sync that makes it durable.
//
// A slow fsync under a shard lock would serialise every writer on that
// stripe behind the disk — exactly what the append-under-lock /
// sync-outside-lock split exists to prevent. The analyzer recognises sync
// calls structurally ((*os.File).Sync) and by contract: a function whose
// doc comment carries //litmus:syncs is treated as performing fsync, so the
// property follows call chains one annotation at a time. Likewise
// //litmus:appends marks the WAL append functions for the ordering check.
//
// Deliberate exceptions — segment rotation and close, which sync under
// their own file locks on cold paths — are annotated at the call site:
//
//	//litmus:sync-under-lock-ok <why>
//
// The ordering check accepts //litmus:sync-order-ok for functions that
// legitimately sync state older than what they append.
package fsyncorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the fsyncorder analysis.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncorder",
	Doc:  "no fsync while a mutex is held, and WAL appends precede their sync",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	syncFuncs, appendFuncs := annotatedFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, syncFuncs, appendFuncs)
		}
	}
	return nil
}

// annotatedFuncs maps the package's function objects carrying
// //litmus:syncs and //litmus:appends doc directives.
func annotatedFuncs(pass *analysis.Pass) (syncs, appends map[types.Object]bool) {
	syncs = make(map[types.Object]bool)
	appends = make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fn, "syncs"); ok {
				syncs[obj] = true
			}
			if _, ok := analysis.FuncDirective(fn, "appends"); ok {
				appends[obj] = true
			}
		}
	}
	return syncs, appends
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, syncFuncs, appendFuncs map[types.Object]bool) {
	var firstSync, firstAppend token.Pos
	analysis.WalkHeld(pass.TypesInfo, fn.Body, func(n ast.Node, held map[string]analysis.HeldLock) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		switch {
		case isSyncCall(pass, call, syncFuncs):
			if !firstSync.IsValid() || call.Pos() < firstSync {
				firstSync = call.Pos()
			}
			if len(held) > 0 && !pass.SuppressedAt(call.Pos(), "sync-under-lock-ok") {
				pass.Reportf(call.Pos(), "fsync while holding %s; the group-commit design syncs outside locks (annotate %ssync-under-lock-ok on deliberate cold paths)",
					anyLock(held), analysis.DirectivePrefix)
			}
		case isAppendCall(pass, call, appendFuncs):
			if !firstAppend.IsValid() || call.Pos() < firstAppend {
				firstAppend = call.Pos()
			}
		}
	})
	if firstSync.IsValid() && firstAppend.IsValid() && firstSync < firstAppend {
		if !pass.SuppressedAt(firstSync, "sync-order-ok") {
			if _, ok := analysis.FuncDirective(fn, "sync-order-ok"); !ok {
				pass.Reportf(firstSync, "sync before the WAL append in %s; durability requires append-then-sync (annotate %ssync-order-ok if the sync covers older state)",
					fn.Name.Name, analysis.DirectivePrefix)
			}
		}
	}
}

// isSyncCall matches (*os.File).Sync and calls to //litmus:syncs functions.
func isSyncCall(pass *analysis.Pass, call *ast.CallExpr, syncFuncs map[types.Object]bool) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Sync" && isOSFile(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
	}
	return calleeIn(pass, call, syncFuncs)
}

func isAppendCall(pass *analysis.Pass, call *ast.CallExpr, appendFuncs map[types.Object]bool) bool {
	return calleeIn(pass, call, appendFuncs)
}

// calleeIn resolves call's callee object (plain or method call) and reports
// whether it is in set.
func calleeIn(pass *analysis.Pass, call *ast.CallExpr, set map[types.Object]bool) bool {
	if len(set) == 0 {
		return false
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	return obj != nil && set[obj]
}

func isOSFile(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

func anyLock(held map[string]analysis.HeldLock) string {
	best := ""
	for path := range held {
		if best == "" || path < best {
			best = path
		}
	}
	return best
}
