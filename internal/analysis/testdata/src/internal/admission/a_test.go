package admission

import "repro/internal/ledger"

// Test files are exempt everywhere else; not here.
func helperForTests(l *ledger.Ledger, e ledger.Entry) {
	l.Accrue(e) // want `ledger\.Accrue from the admission layer`
}
