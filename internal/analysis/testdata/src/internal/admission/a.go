// Package admission is golden input for the onepath analyzer's hard-deny
// rule: its import path ends in internal/admission, so NO escape hatch —
// annotation, suppression comment, test file, or the priceAndAccrue name —
// may let it accrue.
package admission

import "repro/internal/ledger"

func sideDoor(l *ledger.Ledger, e ledger.Entry) {
	l.Accrue(e) // want `ledger\.Accrue from the admission layer`
}

// annotatedFunc carries the annotation that would sanction any other
// package; here it is ignored.
//
//litmus:allow-accrue admission wants to bill anyway
func annotatedFunc(l *ledger.Ledger, e ledger.Entry, res []ledger.AccrualResult) {
	l.AccrueBatch([]ledger.Entry{e}, res) // want `ledger\.AccrueBatch from the admission layer`
}

func suppressedSite(l *ledger.Ledger, e ledger.Entry) {
	//litmus:allow-accrue inline suppression is ignored too
	l.Accrue(e) // want `ledger\.Accrue from the admission layer`
}

// priceAndAccrue matches the sanctioned function's NAME, but the sanction
// does not extend into the admission layer.
func priceAndAccrue(l *ledger.Ledger, e ledger.Entry, rec ledger.WALRecord) {
	l.Accrue(e)         // want `ledger\.Accrue from the admission layer`
	l.ApplyReplica(rec) // want `ledger\.ApplyReplica from the admission layer`
}

type other struct{}

// Accrue on an unrelated type is still fine: the rule gates the ledger's
// money entrances, not the method name.
func (other) Accrue(ledger.Entry) {}

func unrelated(o other, e ledger.Entry) {
	o.Accrue(e)
}
