// Package onepath is golden input for the onepath analyzer.
package onepath

import "repro/internal/ledger"

func sideDoor(l *ledger.Ledger, e ledger.Entry) {
	l.Accrue(e) // want `ledger\.Accrue outside the sanctioned pricing path`
}

func priceAndAccrue(l *ledger.Ledger, e ledger.Entry) {
	l.Accrue(e) // the sanctioned path is matched by name
}

// replayTool re-bills from a trace during offline replay.
//
//litmus:allow-accrue offline replay re-creates historical bills
func replayTool(l *ledger.Ledger, e ledger.Entry) {
	l.Accrue(e)
}

func annotatedSite(l *ledger.Ledger, e ledger.Entry) {
	//litmus:allow-accrue one-off backfill behind an operator flag
	l.Accrue(e)
}

type other struct{}

// Accrue on an unrelated type is not the ledger's Accrue.
func (other) Accrue(ledger.Entry) {}

func unrelated(o other, e ledger.Entry) {
	o.Accrue(e)
}
