// Package onepath is golden input for the onepath analyzer.
package onepath

import "repro/internal/ledger"

func sideDoor(l *ledger.Ledger, e ledger.Entry) {
	l.Accrue(e) // want `ledger\.Accrue outside the sanctioned pricing path`
}

func sideDoorBatch(l *ledger.Ledger, e ledger.Entry, res []ledger.AccrualResult) {
	l.AccrueBatch([]ledger.Entry{e}, res) // want `ledger\.AccrueBatch outside the sanctioned pricing path`
}

func priceAndAccrue(l *ledger.Ledger, e ledger.Entry, rec ledger.WALRecord, res []ledger.AccrualResult) {
	l.Accrue(e)                           // the sanctioned path is matched by name
	l.AccrueBatch([]ledger.Entry{e}, res) // the batched form is sanctioned the same way
	l.ApplyReplica(rec)                   // want `ledger\.ApplyReplica outside the replication path`
}

// replayTool re-bills from a trace during offline replay.
//
//litmus:allow-accrue offline replay re-creates historical bills
func replayTool(l *ledger.Ledger, e ledger.Entry) {
	l.Accrue(e)
}

func annotatedSite(l *ledger.Ledger, e ledger.Entry) {
	//litmus:allow-accrue one-off backfill behind an operator flag
	l.Accrue(e)
}

// sideDoorReplica re-applies primary outcomes from outside the replication
// path: a second money entrance, flagged like a stray Accrue.
func sideDoorReplica(l *ledger.Ledger, rec ledger.WALRecord) {
	l.ApplyReplica(rec) // want `ledger\.ApplyReplica outside the replication path`
}

// walTailer is the follower's apply loop, annotated with its reason.
//
//litmus:allow-accrue WAL tailing applies the primary's decided outcomes
func walTailer(l *ledger.Ledger, rec ledger.WALRecord) {
	l.ApplyReplica(rec)
}

func annotatedReplicaSite(l *ledger.Ledger, rec ledger.WALRecord) {
	//litmus:allow-accrue replaying a captured WAL during a support dump
	l.ApplyReplica(rec)
}

type other struct{}

// Accrue on an unrelated type is not the ledger's Accrue; same for
// ApplyReplica.
func (other) Accrue(ledger.Entry) {}

func (other) ApplyReplica(ledger.WALRecord) {}

func unrelated(o other, e ledger.Entry, rec ledger.WALRecord) {
	o.Accrue(e)
	o.ApplyReplica(rec)
}
