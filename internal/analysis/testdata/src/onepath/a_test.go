package onepath

import "repro/internal/ledger"

// Test files may bill the ledger directly by design.
func helperForTests(l *ledger.Ledger, e ledger.Entry) {
	l.Accrue(e)
}
