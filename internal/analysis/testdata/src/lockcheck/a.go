// Package lockcheck is golden input for the lockcheck analyzer.
package lockcheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
	//litmus:unguarded closed once before the counter is shared
	done chan struct{}
}

func (c *counter) good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bad() int {
	return c.n // want `c\.n is guarded by c\.mu`
}

func (c *counter) badAfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `c\.n is guarded by c\.mu`
}

func (c *counter) errPath(fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errFailed
	}
	c.n = 1
	c.mu.Unlock()
	return nil
}

func (c *counter) lockedOnOneBranchOnly(cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.n++ // want `c\.n is guarded by c\.mu`
	if cond {
		c.mu.Unlock()
	}
}

func (c *counter) inGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `c\.n is guarded by c\.mu`
	}()
}

// applyLocked is called with c.mu held.
//
//litmus:guarded-by caller
func (c *counter) applyLocked() {
	c.n++
}

func fresh() *counter {
	c := &counter{}
	c.n = 1 // freshly constructed: not yet shared
	return c
}

func (c *counter) annotatedSite() {
	//litmus:guarded-by recovery owns the counter exclusively here
	c.n = 0
}

func (c *counter) unguardedField() {
	close(c.done)
}

type plain struct { // no mu field: not a monitored struct
	n int
}

func (p *plain) bump() {
	p.n++
}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }
