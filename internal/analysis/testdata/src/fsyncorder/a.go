// Package fsyncorder is golden input for the fsyncorder analyzer.
package fsyncorder

import (
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	f  *os.File
}

// appendRec is the WAL append.
//
//litmus:appends
func (s *store) appendRec(b []byte) error {
	_, err := s.f.Write(b)
	return err
}

// syncWAL makes prior appends durable.
//
//litmus:syncs
func (s *store) syncWAL() error {
	return s.f.Sync()
}

func (s *store) badDirect() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `fsync while holding s\.mu`
}

func (s *store) badViaHelper() error {
	s.mu.Lock()
	err := s.syncWAL() // want `fsync while holding s\.mu`
	s.mu.Unlock()
	return err
}

func (s *store) goodGroupCommit(b []byte) error {
	s.mu.Lock()
	err := s.appendRec(b)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.syncWAL()
}

func (s *store) deliberateColdPath() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//litmus:sync-under-lock-ok rotation-style cold path, held rarely
	return s.f.Sync()
}

func (s *store) badOrder(b []byte) error {
	if err := s.syncWAL(); err != nil { // want `sync before the WAL append`
		return err
	}
	return s.appendRec(b)
}

// checkpointOld syncs state older than what it appends.
//
//litmus:sync-order-ok
func checkpointOld(s *store, b []byte) error {
	if err := s.syncWAL(); err != nil {
		return err
	}
	return s.appendRec(b)
}
