// Package closecheck is golden input for the closecheck analyzer.
package closecheck

import (
	"io"
	"os"
)

type wal struct {
	f *os.File
}

func (w *wal) Close() error { return w.f.Close() }

func (w *wal) Sync() error { return w.f.Sync() }

func bad(w *wal) {
	w.Close() // want `\(wal\)\.Close error discarded`
}

func badSync(w *wal) {
	w.Sync() // want `\(wal\)\.Sync error discarded`
}

func badDefer(f *os.File) {
	defer f.Close() // want `\(File\)\.Close error discarded`
}

func badRename(a, b string) {
	os.Rename(a, b) // want `os\.Rename error discarded`
}

func badTruncate(path string) {
	os.Truncate(path, 0) // want `os\.Truncate error discarded`
}

func explicitDiscard(w *wal) {
	_ = w.Close() // visible in review: accepted
}

func handled(w *wal) error {
	return w.Close()
}

func annotated(f *os.File) {
	//litmus:close-ok read-only file; close cannot lose data
	f.Close()
}

type noErr struct{}

func (noErr) Close() {}

func fine(n noErr) {
	n.Close() // returns no error: nothing to discard
}

func foreignInterface(r io.ReadCloser) {
	r.Close() // interfaces are out of scope
}
