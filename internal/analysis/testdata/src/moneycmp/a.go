// Package moneycmp is golden input for the moneycmp analyzer.
package moneycmp

type bill struct {
	amount float64
	other  float64
}

func bad(a, b bill) bool {
	return a.amount == b.amount // want `== between computed float64 amounts`
}

func badNeq(a, b bill) bool {
	return a.amount != b.other // want `!= between computed float64 amounts`
}

func dyadicConstOK(a bill) bool {
	return a.amount == 12 || a.amount == 0.25 || 0 == a.amount
}

func roundedConstBad(a bill) bool {
	return a.amount == 0.1 // want `== between computed float64 amounts`
}

func nanIdiom(a bill) bool {
	return a.amount != a.amount
}

func annotated(a, b bill) bool {
	//litmus:float-eq-ok differential oracle: both sides derive from one stream
	return a.amount == b.amount
}

func badSwitch(a bill) int {
	switch a.amount { // want `switch on a float64 amount`
	case 1:
		return 1
	}
	return 0
}

func intsFine(x, y int) bool {
	return x == y
}

func orderingFine(a, b bill) bool {
	return a.amount < b.amount
}
