// Package analysis is the core of litmusvet, the repo's static-analysis
// suite: a small, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis driver model (Analyzer, Pass, Diagnostic)
// plus the shared machinery the checkers build on — //litmus: directive
// parsing and a lock-state walker that tracks which mutexes are held at
// every program point.
//
// The x/tools module is deliberately not a dependency: the build must work
// hermetically from the standard toolchain alone. The subset implemented
// here is exactly what the litmusvet analyzers need; it is not a general
// replacement (no facts, no cross-package analysis, no suggested fixes).
//
// Each analyzer encodes one invariant the ledger's correctness argument
// rests on but the compiler cannot see; see the analyzer subpackages
// (lockcheck, fsyncorder, onepath, moneycmp, closecheck) and the README's
// "Static analysis" section.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test expectations.
	Name string
	// Doc is a one-paragraph description of the invariant it enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic; the driver handles ordering and
	// deduplication.
	Report func(Diagnostic)

	dirs *Directives
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Directives returns the pass's //litmus: directive index, built lazily.
func (p *Pass) Directives() *Directives {
	if p.dirs == nil {
		p.dirs = CollectDirectives(p.Fset, p.Files)
	}
	return p.dirs
}

// SuppressedAt reports whether a //litmus:<name> directive covers the line
// containing pos — the per-site escape hatch every analyzer honours.
func (p *Pass) SuppressedAt(pos token.Pos, name string) bool {
	_, ok := p.Directives().At(p.Fset, pos, name)
	return ok
}

// Inspect walks every file in the pass in depth-first order.
func (p *Pass) Inspect(visit func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, visit)
	}
}
