package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the shared lock-state walker: a conservative abstract
// interpretation over a function body that tracks, at every expression, the
// set of sync.Mutex/sync.RWMutex values known to be held. It is purely
// lexical and intra-procedural — no SSA, no aliasing — which is exactly the
// right fidelity for this codebase's locking idiom (lock a named receiver or
// local, access its fields, unlock on every path) and errs on the side of
// reporting: a path the walker cannot prove locked is treated as unlocked.

// A HeldLock describes one mutex held at a program point.
type HeldLock struct {
	// Path is the rendered lock expression, e.g. "sh.mu" or "w.syncMu".
	Path string
	// Owner is the type of the expression the mutex was selected from
	// (e.g. *shard for "sh.mu"); nil when the mutex is a bare variable.
	Owner types.Type
	// RLock records that the lock was acquired with RLock.
	RLock bool
	Pos   token.Pos
}

type lockSet map[string]HeldLock

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held in both sets — the merge at control-flow
// joins, so "held" always means "held on every path that reaches here".
func intersect(a, b lockSet) lockSet {
	c := make(lockSet)
	for k, v := range a {
		if _, ok := b[k]; ok {
			c[k] = v
		}
	}
	return c
}

// WalkHeld walks body, invoking visit on every expression node with the set
// of locks provably held at that point. Function literals are walked too:
// with the current lock set when immediately deferred (they run while the
// locks' critical sections are being unwound) and with an empty set
// otherwise (goroutines and stored closures run at an unknown time).
func WalkHeld(info *types.Info, body *ast.BlockStmt, visit func(n ast.Node, held map[string]HeldLock)) {
	w := &lockWalker{info: info, visit: visit}
	w.stmts(body.List, make(lockSet))
}

type lockWalker struct {
	info  *types.Info
	visit func(n ast.Node, held map[string]HeldLock)
}

// stmts walks a statement sequence from entry state held, returning the exit
// state and whether the sequence always diverges (returns, panics, or
// branches away) before falling off the end.
func (w *lockWalker) stmts(list []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case nil:
		return held, false

	case *ast.ExprStmt:
		w.exprs(s.X, held)
		if path, lock, kind := w.lockOp(s.X); kind != opNone {
			held = held.clone()
			if kind == opLock {
				held[path] = lock
			} else {
				delete(held, path)
			}
		}
		if isPanicCall(s.X) {
			return held, true
		}
		return held, false

	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function; any other deferred call runs with the current locks
		// conceptually still in scope.
		if _, _, kind := w.lockOp(s.Call); kind == opUnlock {
			for _, arg := range s.Call.Args {
				w.exprs(arg, held)
			}
			return held, false
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.exprs(lit.Type, held)
			w.stmts(lit.Body.List, held.clone())
			for _, arg := range s.Call.Args {
				w.exprs(arg, held)
			}
			return held, false
		}
		w.exprs(s.Call, held)
		return held, false

	case *ast.GoStmt:
		// The goroutine runs concurrently: it holds nothing.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.exprs(lit.Type, held)
			w.stmts(lit.Body.List, make(lockSet))
		} else {
			w.exprVisitOnly(s.Call.Fun, held)
		}
		for _, arg := range s.Call.Args {
			w.exprs(arg, held)
		}
		return held, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.exprs(r, held)
		}
		return held, true

	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; treat as divergence so
		// their lock state never leaks into the fall-through merge.
		return held, true

	case *ast.BlockStmt:
		return w.stmts(s.List, held.clone())

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)

	case *ast.IfStmt:
		held, _ = w.stmt(s.Init, held)
		w.exprs(s.Cond, held)
		thenExit, thenTerm := w.stmts(s.Body.List, held.clone())
		if s.Else == nil {
			if thenTerm {
				return held, false
			}
			return intersect(held, thenExit), false
		}
		elseExit, elseTerm := w.stmt(s.Else, held.clone())
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseExit, false
		case elseTerm:
			return thenExit, false
		default:
			return intersect(thenExit, elseExit), false
		}

	case *ast.ForStmt:
		held, _ = w.stmt(s.Init, held)
		w.exprs(s.Cond, held)
		bodyExit, bodyTerm := w.stmts(s.Body.List, held.clone())
		w.stmt(s.Post, bodyExit)
		if s.Cond == nil {
			// for {}: only reachable exits are breaks; keep entry state.
			return held, false
		}
		if bodyTerm {
			return held, false
		}
		return intersect(held, bodyExit), false

	case *ast.RangeStmt:
		w.exprs(s.X, held)
		bodyExit, bodyTerm := w.stmts(s.Body.List, held.clone())
		if bodyTerm {
			return held, false
		}
		return intersect(held, bodyExit), false

	case *ast.SwitchStmt:
		held, _ = w.stmt(s.Init, held)
		w.exprs(s.Tag, held)
		return w.clauses(s.Body.List, held, hasDefaultClause(s.Body.List))

	case *ast.TypeSwitchStmt:
		held, _ = w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		return w.clauses(s.Body.List, held, hasDefaultClause(s.Body.List))

	case *ast.SelectStmt:
		return w.clauses(s.Body.List, held, true)

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprs(e, held)
		}
		for _, e := range s.Lhs {
			w.exprs(e, held)
		}
		return held, false

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.exprs(e, held)
				return false
			}
			return true
		})
		return held, false

	default:
		// EmptyStmt and anything unanticipated: visit its expressions,
		// change nothing.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.exprs(e, held)
				return false
			}
			return true
		})
		return held, false
	}
}

// clauses merges a switch/select body: each case starts from the entry
// state; the exit is the intersection of every non-diverging case (plus the
// entry state when no case need run at all).
func (w *lockWalker) clauses(list []ast.Stmt, held lockSet, exhaustive bool) (lockSet, bool) {
	var exits []lockSet
	allTerm := true
	for _, c := range list {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.exprs(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			w.stmt(c.Comm, held)
			body = c.Body
		default:
			continue
		}
		exit, term := w.stmts(body, held.clone())
		if !term {
			exits = append(exits, exit)
			allTerm = false
		}
	}
	if !exhaustive {
		exits = append(exits, held)
		allTerm = false
	}
	if allTerm && len(list) > 0 {
		return held, true
	}
	out := held
	for i, e := range exits {
		if i == 0 {
			out = e
		} else {
			out = intersect(out, e)
		}
	}
	return out, false
}

func hasDefaultClause(list []ast.Stmt) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// exprs visits e's tree with the current held set, diverting function
// literals through the walker (stored closures hold nothing).
func (w *lockWalker) exprs(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.visit(n, held)
			w.stmts(lit.Body.List, make(lockSet))
			return false
		}
		if n != nil {
			w.visit(n, held)
		}
		return true
	})
}

// exprVisitOnly visits without descending into function literals at all.
func (w *lockWalker) exprVisitOnly(e ast.Expr, held lockSet) {
	if e != nil {
		w.visit(e, held)
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp recognises x.Lock() / x.RLock() / x.Unlock() / x.RUnlock() calls on
// sync.Mutex or sync.RWMutex values and returns the lock's rendered path.
func (w *lockWalker) lockOp(e ast.Expr) (string, HeldLock, lockOpKind) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", HeldLock{}, opNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", HeldLock{}, opNone
	}
	var kind lockOpKind
	var rlock bool
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "RLock":
		kind, rlock = opLock, true
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", HeldLock{}, opNone
	}
	if !isMutexType(w.info.TypeOf(sel.X)) {
		return "", HeldLock{}, opNone
	}
	path := RenderExpr(sel.X)
	lock := HeldLock{Path: path, RLock: rlock, Pos: e.Pos()}
	if inner, ok := sel.X.(*ast.SelectorExpr); ok {
		lock.Owner = w.info.TypeOf(inner.X)
	}
	return path, lock, kind
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly via
// a pointer).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// RenderExpr renders an expression as a stable path string ("sh.mu",
// "l.shards[i]") for matching lock sites against field accesses. Expressions
// it cannot render map to a unique placeholder, which never matches.
func RenderExpr(e ast.Expr) string {
	var b strings.Builder
	renderExpr(&b, e)
	return b.String()
}

func renderExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		renderExpr(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.IndexExpr:
		renderExpr(b, e.X)
		b.WriteByte('[')
		renderExpr(b, e.Index)
		b.WriteByte(']')
	case *ast.ParenExpr:
		renderExpr(b, e.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		renderExpr(b, e.X)
	case *ast.UnaryExpr:
		b.WriteString(e.Op.String())
		renderExpr(b, e.X)
	case *ast.BasicLit:
		b.WriteString(e.Value)
	case *ast.CallExpr:
		renderExpr(b, e.Fun)
		b.WriteString("(…)")
	default:
		fmtUnrenderable(b, e)
	}
}

func fmtUnrenderable(b *strings.Builder, e ast.Expr) {
	// Position-salted so two distinct unrenderable expressions never
	// compare equal.
	b.WriteString("⟨expr@")
	b.WriteString(itoa(int(e.Pos())))
	b.WriteString("⟩")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
