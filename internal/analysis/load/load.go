// Package load type-checks Go packages for litmusvet without depending on
// golang.org/x/tools/go/packages: it shells out to `go list -export -deps`
// for the build graph and compiler export data, parses the target packages'
// sources with comments, and type-checks them against the export data with
// the standard library importer. Everything works offline — the export
// files come from the local build cache, produced by the same toolchain
// that builds the repo.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked compilation unit ready for analysis.
type Package struct {
	// ImportPath is the go list identifier; test variants keep their
	// bracketed suffix, e.g. "repro/internal/ledger [repro/internal/ledger.test]".
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Packages loads and type-checks the packages matching patterns, resolved
// relative to dir. With tests true, packages that have test files are
// returned as their test variant (package sources plus in-package _test.go
// files) and external _test packages are included — the same units `go vet`
// analyzes during `go test`.
func Packages(dir string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "-json=Dir,ImportPath,Name,Export,Standard,DepOnly,ForTest,GoFiles,Imports,ImportMap,Error,DepsErrors")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path → export data file
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test main package
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}

	// When a package's test variant is present it strictly contains the
	// plain unit, so analyze only the variant — otherwise every diagnostic
	// in a non-test file would be reported twice.
	variants := make(map[string]bool)
	for _, p := range targets {
		if p.ForTest != "" && p.ImportPath != p.ForTest && strings.HasPrefix(p.ImportPath, p.ForTest+" ") {
			variants[p.ForTest] = true
		}
	}

	var pkgs []*Package
	for _, p := range targets {
		if variants[p.ImportPath] {
			continue
		}
		pkg, err := check(p, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one go list unit against export data.
func check(p *listPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (build the package first)", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect everything; first error reported below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	// Strip the variant suffix for the types.Package path so Pkg.Path()
	// matches what analyzers expect.
	path, _, _ := strings.Cut(p.ImportPath, " ")
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}
