package closecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/closecheck"
)

func TestClosecheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), closecheck.Analyzer, "closecheck")
}
