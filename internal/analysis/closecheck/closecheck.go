// Package closecheck flags discarded error returns from Close, Sync and
// os.Rename on the durability path — the failures errcheck never sees
// because they hide behind this repo's own wrapper types.
//
// A Close on a written file is the last chance to observe a write-back
// failure; a Sync error is a durability guarantee silently voided; a failed
// Rename is a snapshot that never committed. Discarding any of them in an
// expression, defer or go statement is a diagnostic when the receiver is:
//
//   - *os.File (or os.Rename itself), or
//   - any named type defined in this module (ledger.Ledger, api.Server,
//     the WAL wrappers, ...) whose Close/Sync returns an error.
//
// Interfaces and foreign types (resp.Body.Close(), net.Conn) are out of
// scope — errcheck-class tools cover those, and the noise would drown the
// durability signal.
//
// Explicitly assigning the error away (`_ = f.Close()`) is accepted: it is
// visible in review. A call site that must stay fire-and-forget is
// annotated //litmus:close-ok <why>.
package closecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the closecheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "no discarded errors from Close/Sync/Rename on durability-path files",
	Run:  run,
}

const directive = "close-ok"

// modulePrefix scopes "our wrapper types": any package in this module.
const modulePrefix = "repro"

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = n.Call
		case *ast.GoStmt:
			call = n.Call
		default:
			return true
		}
		if call == nil {
			return true
		}
		what, ok := flaggable(pass, call)
		if !ok {
			return true
		}
		if pass.SuppressedAt(call.Pos(), directive) {
			return true
		}
		pass.Reportf(call.Pos(), "%s error discarded on the durability path; handle it, assign it to _ explicitly, or annotate %s%s",
			what, analysis.DirectivePrefix, directive)
		return true
	})
	return nil
}

// flaggable reports whether call is a Close/Sync/Rename whose error this
// analyzer cares about, and names it for the diagnostic.
func flaggable(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	// os.Rename / os.Truncate as package functions.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if obj.Imported().Path() == "os" && (name == "Rename" || name == "Truncate") {
				return "os." + name, true
			}
			return "", false
		}
	}
	if name != "Close" && name != "Sync" && name != "close" && name != "sync" {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || !returnsError(fn) {
		return "", false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return "", false
	}
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false // interface or anonymous receiver: out of scope
	}
	tobj := named.Obj()
	if tobj.Pkg() == nil {
		return "", false
	}
	pkgPath := tobj.Pkg().Path()
	osFile := pkgPath == "os" && tobj.Name() == "File"
	ours := pkgPath == modulePrefix || strings.HasPrefix(pkgPath, modulePrefix+"/")
	if !osFile && !ours {
		return "", false
	}
	return "(" + tobj.Name() + ")." + name, true
}

// returnsError reports whether fn's final result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
