package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		in   string
		name string
		args string
		ok   bool
	}{
		{"//litmus:guarded-by caller holds mu", "guarded-by", "caller holds mu", true},
		{"//litmus:close-ok", "close-ok", "", true},
		{"//litmus:float-eq-ok   padded  ", "float-eq-ok", "padded", true},
		{"// litmus:guarded-by spaced is not a directive", "", "", false},
		{"// plain comment", "", "", false},
		{"//litmus:", "", "", false},
	}
	for _, c := range cases {
		d, ok := ParseDirective(&ast.Comment{Text: c.in})
		if ok != c.ok {
			t.Errorf("ParseDirective(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (d.Name != c.name || d.Args != c.args) {
			t.Errorf("ParseDirective(%q) = %q/%q, want %q/%q", c.in, d.Name, d.Args, c.name, c.args)
		}
	}
}

func TestDirectiveCoversNextLine(t *testing.T) {
	const src = `package p

func f() {
	//litmus:close-ok own line covers the next
	g() // line 5: covered
	g() // line 6: not covered
	g() //litmus:close-ok trailing comment covers its own line
}

func g() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs := CollectDirectives(fset, []*ast.File{file})

	posOnLine := func(line int) token.Pos {
		f := fset.File(file.Pos())
		return f.LineStart(line)
	}
	if _, ok := dirs.At(fset, posOnLine(5), "close-ok"); !ok {
		t.Error("directive on its own line should cover the next line")
	}
	if _, ok := dirs.At(fset, posOnLine(6), "close-ok"); ok {
		t.Error("directive should not reach two lines down")
	}
	if _, ok := dirs.At(fset, posOnLine(7), "close-ok"); !ok {
		t.Error("trailing directive should cover its own line")
	}
	if _, ok := dirs.At(fset, posOnLine(5), "float-eq-ok"); ok {
		t.Error("directive names must match")
	}
}
