// Package moneycmp forbids exact equality on floating-point money.
//
// Billed amounts are float64 throughout the system, and the repo's
// correctness story is careful about when two of them may be compared
// exactly: the differential and crash harnesses feed both sides identical
// dyadic-exact amounts (ledgertest's Exact streams), so byte-identical
// comparison is sound there — but a general ==/!= between two computed
// amounts is a rounding bug waiting to happen, and a switch on a float is
// never right.
//
// The analyzer flags == and != where both operands are floating point, and
// any switch whose tag is floating point, with two principled exemptions:
//
//   - comparison against a constant whose exact value is representable in
//     float64 (0, 1, 12, 0.25, ...): equality with a dyadic constant is
//     well-defined, and it is how tests assert exact bills. A constant that
//     already rounded (0.1, 1e-20) gets no exemption — comparing against it
//     is exactly the bug this check exists for.
//   - x != x / x == x, the NaN idiom.
//
// Deliberate exact comparisons between computed amounts (the differential
// idiom outside ledgertest) are annotated //litmus:float-eq-ok <why>.
package moneycmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the moneycmp analysis.
var Analyzer = &analysis.Analyzer{
	Name: "moneycmp",
	Doc:  "no ==/!=/switch on float64 amounts; use dyadic-exact constants or epsilon",
	Run:  run,
}

const directive = "float-eq-ok"

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if !isFloat(pass, n.X) || !isFloat(pass, n.Y) {
				return true
			}
			if exactConst(pass, n.X) || exactConst(pass, n.Y) {
				return true
			}
			if analysis.RenderExpr(n.X) == analysis.RenderExpr(n.Y) {
				return true // x != x: the NaN check
			}
			if pass.SuppressedAt(n.OpPos, directive) {
				return true
			}
			pass.Reportf(n.OpPos, "%s between computed float64 amounts; compare with an epsilon or dyadic-exact values (annotate %s%s where both sides derive from one stream)",
				n.Op, analysis.DirectivePrefix, directive)
		case *ast.SwitchStmt:
			if n.Tag == nil || !isFloat(pass, n.Tag) {
				return true
			}
			if pass.SuppressedAt(n.Switch, directive) {
				return true
			}
			pass.Reportf(n.Switch, "switch on a float64 amount; float case matching is exact equality in disguise")
		}
		return true
	})
	return nil
}

// isFloat reports whether e's type is floating point (float32/float64 or a
// defined type over one). Untyped constants take their default type.
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	if basic.Info()&types.IsUntyped != 0 {
		t = types.Default(t)
		basic, ok = t.Underlying().(*types.Basic)
		if !ok {
			return false
		}
	}
	return basic.Info()&types.IsFloat != 0
}

// exactConst reports whether e is a constant whose exact mathematical value
// is representable in float64 without rounding — the dyadic rationals tests
// may compare against. The check must read the unrounded value: go/types
// records typed float constants already rounded to float64 (0.1 becomes the
// nearest double, which is trivially "exact"), so the literal text or the
// declared constant's untyped value is consulted instead.
func exactConst(pass *analysis.Pass, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op == token.SUB || x.Op == token.ADD {
				e = x.X
				continue
			}
		}
		break
	}
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Kind != token.INT && x.Kind != token.FLOAT {
			return false
		}
		return exactFloat(constant.MakeFromLiteral(x.Value, x.Kind, 0))
	case *ast.Ident:
		if c, ok := pass.TypesInfo.Uses[x].(*types.Const); ok {
			return exactFloat(c.Val())
		}
	case *ast.SelectorExpr:
		if c, ok := pass.TypesInfo.Uses[x.Sel].(*types.Const); ok {
			return exactFloat(c.Val())
		}
	}
	return false
}

func exactFloat(v constant.Value) bool {
	v = constant.ToFloat(v)
	if v.Kind() != constant.Float {
		return false
	}
	_, exact := constant.Float64Val(v)
	return exact
}
