package moneycmp_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/moneycmp"
)

func TestMoneycmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), moneycmp.Analyzer, "moneycmp")
}
