// Package lockcheck enforces the ledger's stripe-lock invariant: every
// field of a mutex-guarded struct is read and written only while that
// struct's mutex is held.
//
// A struct opts in by convention, the same convention internal/ledger uses:
// it declares a field named "mu" of type sync.Mutex or sync.RWMutex. All its
// other fields are then guarded, except fields of sync.* / sync/atomic.*
// types (they synchronise themselves) and fields annotated
//
//	//litmus:unguarded <why>
//
// Accesses are checked per function with a conservative lock-state walk
// (see analysis.WalkHeld): an access to x.f is legal only when x.mu is
// provably held at that point. Two escape hatches cover the legitimate
// exceptions:
//
//   - a function whose doc comment carries //litmus:guarded-by <who> is
//     trusted to be called with the lock held (the "callers hold mu"
//     contract, e.g. shard.apply);
//   - an access whose line (or the line above) carries //litmus:guarded-by
//     is trusted individually (e.g. single-threaded recovery code before
//     the ledger is published).
//
// Accesses through a variable freshly built from a composite literal in the
// same function (w := &walFile{...}) are exempt automatically: nothing else
// can hold a reference yet.
package lockcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "reads/writes of mu-guarded struct fields must hold the struct's mu",
	Run:  run,
}

const directive = "guarded-by"

// guardedStruct describes one monitored struct type.
type guardedStruct struct {
	name    *types.Named
	guarded map[string]bool // field name → guarded
}

func run(pass *analysis.Pass) error {
	structs := monitoredStructs(pass)
	if len(structs) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fn, directive); ok {
				continue // callers hold the lock by contract
			}
			checkFunc(pass, fn, structs)
		}
	}
	return nil
}

// monitoredStructs finds the package's structs that declare a `mu` mutex
// field and records which of their fields are guarded by it.
func monitoredStructs(pass *analysis.Pass) map[*types.Struct]*guardedStruct {
	out := make(map[*types.Struct]*guardedStruct)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name]
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				under, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				gs := classify(pass, st, under, named)
				if gs != nil {
					out[under] = gs
				}
			}
		}
	}
	return out
}

// classify returns the guarded-field set for one struct, or nil when the
// struct does not declare a mu mutex.
func classify(pass *analysis.Pass, st *ast.StructType, under *types.Struct, named *types.Named) *guardedStruct {
	hasMu := false
	for i := 0; i < under.NumFields(); i++ {
		f := under.Field(i)
		if f.Name() == "mu" && isSyncType(f.Type(), "Mutex", "RWMutex") {
			hasMu = true
		}
	}
	if !hasMu {
		return nil
	}
	gs := &guardedStruct{name: named, guarded: make(map[string]bool)}
	idx := 0
	for _, field := range st.Fields.List {
		names := field.Names
		if len(names) == 0 { // embedded field
			idx++
			continue
		}
		for _, name := range names {
			f := under.Field(idx)
			idx++
			if f.Name() == "mu" || selfSynchronised(f.Type()) {
				continue
			}
			if _, ok := analysis.FieldDirective(field, "unguarded"); ok {
				continue
			}
			gs.guarded[name.Name] = true
		}
	}
	if len(gs.guarded) == 0 {
		return nil
	}
	return gs
}

// selfSynchronised reports types that carry their own synchronisation and
// are therefore exempt from mu: anything from sync or sync/atomic (directly
// or behind one pointer).
func selfSynchronised(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

func isSyncType(t types.Type, names ...string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, structs map[*types.Struct]*guardedStruct) {
	fresh := freshLocals(pass, fn, structs)
	analysis.WalkHeld(pass.TypesInfo, fn.Body, func(n ast.Node, held map[string]analysis.HeldLock) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return
		}
		// Only direct field selections count: x.f where x's struct is
		// monitored. (Promoted fields via embedding have Index()>1 and do
		// not occur in this codebase's guarded structs.)
		recv := selection.Recv()
		if p, ok := recv.Underlying().(*types.Pointer); ok {
			recv = p.Elem()
		}
		under, ok := recv.Underlying().(*types.Struct)
		if !ok {
			return
		}
		gs, ok := structs[under]
		if !ok || !gs.guarded[sel.Sel.Name] {
			return
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && fresh[obj] {
				return // locally constructed, not yet shared
			}
		}
		lockPath := analysis.RenderExpr(sel.X) + ".mu"
		if _, heldHere := held[lockPath]; heldHere {
			return
		}
		if pass.SuppressedAt(sel.Sel.Pos(), directive) {
			return
		}
		pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s; no lock is held on this path (annotate %sguarded-by if the caller holds it)",
			analysis.RenderExpr(sel.X), sel.Sel.Name, lockPath, analysis.DirectivePrefix)
	})
}

// freshLocals finds variables initialised in fn from a composite literal of
// a monitored struct (sh := &shard{...}); accesses through them are exempt
// because the value cannot be shared yet.
func freshLocals(pass *analysis.Pass, fn *ast.FuncDecl, structs map[*types.Struct]*guardedStruct) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = u.X
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			t := pass.TypesInfo.TypeOf(rhs)
			if t == nil {
				continue
			}
			if under, ok := t.Underlying().(*types.Struct); ok {
				if _, monitored := structs[under]; monitored {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						fresh[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}
