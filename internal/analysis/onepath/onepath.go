// Package onepath enforces the single-accrual-path invariant: every bill in
// the system flows through one sanctioned pricing path, so no subsystem can
// side-door money into the ledger.
//
// Calls to (*ledger.Ledger).Accrue are permitted only from:
//
//   - the ledger subsystem itself (repro/internal/ledger and its
//     subpackages — WAL replay and the differential/crash harnesses);
//   - api.(*Server).priceAndAccrue, the one function that prices a request
//     and bills the result (PR 3 made it the single accrual path);
//   - _test.go files, which exercise the ledger directly by design;
//   - call sites annotated //litmus:allow-accrue <why>.
//
// Everything else is a diagnostic: a new caller of Accrue is a new billing
// path and must either route through the API's pricing path or earn an
// explicit annotation in review.
package onepath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the onepath analysis.
var Analyzer = &analysis.Analyzer{
	Name: "onepath",
	Doc:  "ledger.Accrue is called only from the sanctioned pricing paths",
	Run:  run,
}

// ledgerPath is the package whose Accrue is protected; sanctionedFunc the
// one function outside it allowed to bill.
const (
	ledgerPath     = "repro/internal/ledger"
	sanctionedFunc = "priceAndAccrue"
)

func run(pass *analysis.Pass) error {
	if p := pass.Pkg.Path(); p == ledgerPath || strings.HasPrefix(p, ledgerPath+"/") {
		return nil // the ledger subsystem is the mechanism, not a caller
	}
	for _, file := range pass.Files {
		testFile := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		if testFile {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			allowedFunc := fn.Name.Name == sanctionedFunc
			if _, ok := analysis.FuncDirective(fn, "allow-accrue"); ok {
				allowedFunc = true
			}
			if allowedFunc {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Accrue" {
					return true
				}
				if !isLedgerMethod(pass, sel) {
					return true
				}
				if pass.SuppressedAt(call.Pos(), "allow-accrue") {
					return true
				}
				pass.Reportf(call.Pos(), "ledger.Accrue outside the sanctioned pricing path; bill through api.(*Server).%s or annotate %sallow-accrue with a reason",
					sanctionedFunc, analysis.DirectivePrefix)
				return true
			})
		}
	}
	return nil
}

// isLedgerMethod reports whether sel selects the Accrue method of
// repro/internal/ledger.Ledger.
func isLedgerMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Ledger" && obj.Pkg() != nil && obj.Pkg().Path() == ledgerPath
}
