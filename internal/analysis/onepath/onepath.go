// Package onepath enforces the single-accrual-path invariant: every bill in
// the system flows through one sanctioned pricing path, so no subsystem can
// side-door money into the ledger.
//
// Calls to (*ledger.Ledger).Accrue and its batched counterpart
// (*ledger.Ledger).AccrueBatch are permitted only from:
//
//   - the ledger subsystem itself (repro/internal/ledger and its
//     subpackages — WAL replay and the differential/crash harnesses);
//   - api.(*Server).priceAndAccrue, the one function that prices a request
//     and bills the result (PR 3 made it the single accrual path);
//   - _test.go files, which exercise the ledger directly by design;
//   - call sites annotated //litmus:allow-accrue <why> (the api stream
//     collector's batched flush carries one: it is priceAndAccrue's
//     batched delegate, same entries, same standby gate).
//
// Calls to (*ledger.Ledger).ApplyReplica — the replication side door that
// applies a primary's already-decided outcomes — are gated the same way,
// minus the priceAndAccrue sanction: only the ledger subsystem, test files,
// and annotated sites (the cluster follower's tail loop carries one) may
// call it. A standby that both replicated and priced would double-bill.
//
// The admission-control subsystem (repro/internal/admission) is hard-denied:
// no annotation, test file, or suppression comment lets it accrue. The
// limiter decides whether a record may BE billed — if it could also bill,
// a throttle-then-admit path could accrue twice, and the differential
// harness that proves "admitted subset bills identically" would be
// unfalsifiable. Any accrual call from that package is reported
// unconditionally.
//
// Everything else is a diagnostic: a new caller of either method is a new
// billing path and must either route through the API's pricing path or earn
// an explicit annotation in review.
package onepath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the onepath analysis.
var Analyzer = &analysis.Analyzer{
	Name: "onepath",
	Doc:  "ledger.Accrue and ledger.ApplyReplica are called only from the sanctioned billing paths",
	Run:  run,
}

// ledgerPath is the package whose Accrue is protected; sanctionedFunc the
// one function outside it allowed to bill; admissionPath the package for
// which every escape hatch is closed.
const (
	ledgerPath     = "repro/internal/ledger"
	sanctionedFunc = "priceAndAccrue"
	admissionPath  = "repro/internal/admission"
)

func run(pass *analysis.Pass) error {
	p := pass.Pkg.Path()
	if p == ledgerPath || strings.HasPrefix(p, ledgerPath+"/") {
		return nil // the ledger subsystem is the mechanism, not a caller
	}
	// The admission layer gets no escape hatch at all: not test files, not
	// //litmus:allow-accrue, not suppression comments. It gates billing and
	// therefore must never perform it — a second accrual path hidden behind
	// the limiter would make the admitted-subset differential meaningless.
	denyAll := admissionPkg(p)
	for _, file := range pass.Files {
		testFile := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		if testFile && !denyAll {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fn, "allow-accrue"); ok && !denyAll {
				continue
			}
			inSanctioned := fn.Name.Name == sanctionedFunc && !denyAll
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				method := sel.Sel.Name
				if method != "Accrue" && method != "AccrueBatch" && method != "ApplyReplica" {
					return true
				}
				// priceAndAccrue sanctions pricing, not replication: a path
				// that both prices and replicates would double-bill.
				if (method == "Accrue" || method == "AccrueBatch") && inSanctioned {
					return true
				}
				if !isLedgerMethod(pass, sel) {
					return true
				}
				if denyAll {
					pass.Reportf(call.Pos(), "ledger.%s from the admission layer: admission control gates billing and must never bill — route records through the API ingest path (no annotation can allow this)",
						method)
					return true
				}
				if pass.SuppressedAt(call.Pos(), "allow-accrue") {
					return true
				}
				switch method {
				case "Accrue", "AccrueBatch":
					pass.Reportf(call.Pos(), "ledger.%s outside the sanctioned pricing path; bill through api.(*Server).%s or annotate %sallow-accrue with a reason",
						method, sanctionedFunc, analysis.DirectivePrefix)
				case "ApplyReplica":
					pass.Reportf(call.Pos(), "ledger.ApplyReplica outside the replication path; only a WAL-tailing follower may apply primary outcomes — annotate %sallow-accrue with a reason",
						analysis.DirectivePrefix)
				}
				return true
			})
		}
	}
	return nil
}

// admissionPkg reports whether import path p is the admission subsystem or
// nested under it. Matching the "internal/admission" path suffix rather
// than admissionPath exactly lets the golden copy under the analyzer's
// testdata — whose import path carries the testdata prefix — exercise the
// hard-deny branch; no other package in the module ends that way.
func admissionPkg(p string) bool {
	if p == admissionPath || strings.HasPrefix(p, admissionPath+"/") {
		return true
	}
	const suffix = "internal/admission"
	return strings.HasSuffix(p, "/"+suffix) || strings.Contains(p, "/"+suffix+"/")
}

// isLedgerMethod reports whether sel selects the Accrue method of
// repro/internal/ledger.Ledger.
func isLedgerMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Ledger" && obj.Pkg() != nil && obj.Pkg().Path() == ledgerPath
}
