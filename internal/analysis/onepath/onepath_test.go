package onepath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/onepath"
)

func TestOnepath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), onepath.Analyzer, "onepath")
}

// TestOnepathAdmissionHardDeny runs the analyzer over a golden package
// whose import path ends in internal/admission: every accrual call must be
// reported there, including the ones a normal package could sanction with
// annotations, suppression comments, test files, or the priceAndAccrue
// name.
func TestOnepathAdmissionHardDeny(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), onepath.Analyzer, "internal/admission")
}
