package onepath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/onepath"
)

func TestOnepath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), onepath.Analyzer, "onepath")
}
