// Package analysistest runs an analyzer over a golden package under
// testdata/src and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (rebuilt on the
// stdlib because this environment vendors no external modules).
//
// Expectation syntax: a comment `// want "regexp"` (one or more quoted
// regexps, double- or back-quoted) on a line means that line must produce a
// diagnostic matching each regexp. Every diagnostic must be claimed by a
// want on its line, and every want must be claimed by a diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// TestData returns the absolute path of the shared testdata directory,
// assuming the calling test runs in a sibling of internal/analysis/testdata
// (which all analyzer packages are).
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads testdata/src/<pkg> (including its _test.go files), applies the
// analyzer, and reports any mismatch against the // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	pkgs, err := load.Packages(dir, true, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %s", dir)
	}
	for _, p := range pkgs {
		checkPackage(t, a, p)
	}
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

func checkPackage(t *testing.T, a *analysis.Analyzer, p *load.Package) {
	t.Helper()
	wants := collectWants(t, p.Fset, p.Files)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Pkg,
		TypesInfo: p.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.rx)
			}
		}
	}
}

// wantRE matches the expectation marker; quoted patterns follow it.
var wantRE = regexp.MustCompile(`// want (.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range splitQuoted(t, pos, m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the sequence of Go-quoted strings in s.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var end int
		switch s[0] {
		case '`':
			end = strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Walk to the closing quote, honouring escapes.
			end = -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
			}
			out = append(out, unq)
			s = s[end+1:]
		default:
			t.Fatalf("%s: want patterns must be quoted, got %q", pos, s)
		}
		s = strings.TrimSpace(s)
	}
	return out
}
