package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces a litmusvet control comment: //litmus:<name> <args>.
// Directives are written in Go's machine-directive style (no space after //)
// so gofmt leaves them alone.
const DirectivePrefix = "//litmus:"

// A Directive is one parsed //litmus: comment.
type Directive struct {
	// Name is the word after the colon, e.g. "guarded-by" or "close-ok".
	Name string
	// Args is the rest of the comment, conventionally a justification.
	Args string
	Pos  token.Pos
}

// Directives indexes a package's //litmus: comments by file and line.
//
// A directive applies to the line it is written on and, so that it can stand
// alone above the statement it annotates, to the following line as well.
// Declaration-attached directives (in a func or field doc comment) are
// matched separately via FuncDirective / FieldDirective.
type Directives struct {
	byLine map[string]map[int][]Directive // filename → line → directives
}

// ParseDirective parses one comment's text; ok is false for ordinary comments.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, DirectivePrefix) {
		return Directive{}, false
	}
	rest := c.Text[len(DirectivePrefix):]
	name, args, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// CollectDirectives indexes every //litmus: comment in files.
func CollectDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := ParseDirective(c)
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				lines := d.byLine[posn.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					d.byLine[posn.Filename] = lines
				}
				lines[posn.Line] = append(lines[posn.Line], dir)
			}
		}
	}
	return d
}

// At returns the named directive covering pos's line, if any. A directive on
// line N covers lines N and N+1 (see Directives).
func (d *Directives) At(fset *token.FileSet, pos token.Pos, name string) (Directive, bool) {
	if d == nil || !pos.IsValid() {
		return Directive{}, false
	}
	posn := fset.Position(pos)
	lines := d.byLine[posn.Filename]
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, dir := range lines[line] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// FuncDirective returns the named directive from fn's doc comment, if any.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	return commentGroupDirective(fn.Doc, name)
}

// FieldDirective returns the named directive from a struct field's doc or
// trailing line comment, if any.
func FieldDirective(field *ast.Field, name string) (Directive, bool) {
	if dir, ok := commentGroupDirective(field.Doc, name); ok {
		return dir, true
	}
	return commentGroupDirective(field.Comment, name)
}

func commentGroupDirective(cg *ast.CommentGroup, name string) (Directive, bool) {
	if cg == nil {
		return Directive{}, false
	}
	for _, c := range cg.List {
		if dir, ok := ParseDirective(c); ok && dir.Name == name {
			return dir, true
		}
	}
	return Directive{}, false
}
