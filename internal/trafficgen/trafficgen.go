// Package trafficgen implements the paper's two calibration traffic
// generators (§3, Fig. 1):
//
//   - CT-Gen stresses the shared resources *before* the L3: its threads
//     miss L2 constantly but their working sets stay L3-resident, so they
//     consume L3/ring access bandwidth without touching DRAM.
//   - MB-Gen stresses the resources *after* the L3: its threads stream over
//     footprints far larger than the L3, flooding memory bandwidth and
//     continuously evicting L3 blocks. Its own memory stalls throttle it,
//     which is why its L2-miss rate trails CT-Gen's in Fig. 1(a).
//
// Both are multi-threaded; the stress level is the number of threads, each
// pinned to a distinct core (levels 1–31 on the paper's 32-core box).
package trafficgen

import (
	"fmt"

	"repro/internal/workload"
)

// Kind selects a generator.
type Kind int

// Generator kinds.
const (
	CTGen Kind = iota
	MBGen
)

// String implements fmt.Stringer with the paper's names.
func (k Kind) String() string {
	switch k {
	case CTGen:
		return "CT-Gen"
	case MBGen:
		return "MB-Gen"
	default:
		return fmt.Sprintf("gen(%d)", int(k))
	}
}

// Kinds lists both generators in display order.
func Kinds() []Kind { return []Kind{CTGen, MBGen} }

// MaxLevel is the highest stress level on the evaluation machine (31 busy
// cores + 1 core left for the measured function).
const MaxLevel = 31

// endless is an effectively infinite instruction budget; generator threads
// run until the platform removes them.
const endless = 1e15

// ThreadSpec returns the workload model for one generator thread. Generator
// threads are raw native loops: no language runtime, so no startup phases.
func ThreadSpec(k Kind, thread int) *workload.Spec {
	var ph workload.Phase
	switch k {
	case CTGen:
		// Pointer-chase over an L3-resident buffer sized to miss L2: every
		// access leaves the core but hits the L3 (perfect reuse).
		ph = workload.Phase{
			Name: "ct-loop", Instr: endless, CPIBase: 0.50, L2MPKI: 120,
			WSBlocks: 24, Pattern: workload.Hot, MLP: 5.0, DirtyFrac: 0.05,
			Reuse: 1.0,
		}
	case MBGen:
		// Streaming walk over a 64 MiB buffer: misses L2 and L3, consuming
		// memory bandwidth and evicting victims' L3 blocks.
		ph = workload.Phase{
			Name: "mb-loop", Instr: endless, CPIBase: 0.50, L2MPKI: 28,
			WSBlocks: 4096, Pattern: workload.Scan, MLP: 8.0, DirtyFrac: 0.30,
		}
	default:
		panic(fmt.Sprintf("trafficgen: unknown kind %d", int(k)))
	}
	return &workload.Spec{
		Name:     fmt.Sprintf("%s#%d", k, thread),
		Abbr:     fmt.Sprintf("%s-%d", abbr(k), thread),
		Language: workload.Go, // native loop; language is irrelevant (no startup)
		Suite:    "trafficgen",
		MemoryMB: 128,
		Startup:  nil,
		Body:     []workload.Phase{ph},
	}
}

func abbr(k Kind) string {
	if k == CTGen {
		return "ct"
	}
	return "mb"
}

// Fleet returns level thread specs, one per stressed core.
func Fleet(k Kind, level int) []*workload.Spec {
	if level < 0 {
		level = 0
	}
	out := make([]*workload.Spec, level)
	for i := range out {
		out[i] = ThreadSpec(k, i)
	}
	return out
}
