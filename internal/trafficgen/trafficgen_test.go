package trafficgen

import (
	"testing"

	"repro/internal/workload"
)

func TestThreadSpecShapes(t *testing.T) {
	ct := ThreadSpec(CTGen, 0)
	mb := ThreadSpec(MBGen, 3)
	for _, s := range []*workload.Spec{ct, mb} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Abbr, err)
		}
		if len(s.Startup) != 0 {
			t.Errorf("%s: generator threads must have no language startup", s.Abbr)
		}
		if s.TotalInstr() < 1e12 {
			t.Errorf("%s: generator must be effectively endless, got %v instructions", s.Abbr, s.TotalInstr())
		}
	}
	if ct.Abbr == mb.Abbr {
		t.Error("generator abbreviations must differ")
	}
}

func TestCTGenIsL3Resident(t *testing.T) {
	ph := ThreadSpec(CTGen, 0).Body[0]
	if ph.EffectiveReuse() != 1.0 {
		t.Errorf("CT-Gen reuse = %v, want 1.0 (perfect residency: L2 misses end as L3 hits)", ph.EffectiveReuse())
	}
	// 24 blocks × 16 KiB = 384 KiB per thread: misses L2 (1 MiB shared by
	// many lines at line granularity) yet 31 threads stay within a 22 MiB L3.
	if ph.WSBlocks*31 > 1408 {
		t.Errorf("31 CT threads (%d blocks) would overflow the 1408-block L3", ph.WSBlocks*31)
	}
}

func TestMBGenStreamsPastL3(t *testing.T) {
	ph := ThreadSpec(MBGen, 0).Body[0]
	if ph.Pattern != workload.Scan {
		t.Errorf("MB-Gen pattern = %v, want scan", ph.Pattern)
	}
	if ph.WSBlocks <= 1408 {
		t.Errorf("MB-Gen working set %d blocks must exceed the L3 (1408 blocks)", ph.WSBlocks)
	}
	if ph.EffectiveReuse() >= 0.5 {
		t.Errorf("MB-Gen reuse = %v, must be streaming", ph.EffectiveReuse())
	}
}

func TestFleet(t *testing.T) {
	f := Fleet(MBGen, 14)
	if len(f) != 14 {
		t.Fatalf("fleet size = %d, want 14", len(f))
	}
	seen := map[string]bool{}
	for _, s := range f {
		if seen[s.Abbr] {
			t.Errorf("duplicate thread abbr %s", s.Abbr)
		}
		seen[s.Abbr] = true
	}
	if got := Fleet(CTGen, 0); len(got) != 0 {
		t.Errorf("level 0 fleet = %d threads", len(got))
	}
	if got := Fleet(CTGen, -3); len(got) != 0 {
		t.Errorf("negative level fleet = %d threads", len(got))
	}
}

func TestKindString(t *testing.T) {
	if CTGen.String() != "CT-Gen" || MBGen.String() != "MB-Gen" {
		t.Error("kind names must match the paper")
	}
	if len(Kinds()) != 2 {
		t.Error("Kinds() must list both generators")
	}
	if Kind(9).String() != "gen(9)" {
		t.Errorf("unknown kind = %q", Kind(9).String())
	}
}

func TestThreadSpecPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind should panic")
		}
	}()
	ThreadSpec(Kind(42), 0)
}
