// Package render formats experiment results as aligned ASCII tables, CSV,
// or JSON — the output layer of cmd/litmusbench.
package render

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a titled grid of cells with optional footnotes.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded, long rows truncated to the
// column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (title and notes omitted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// JSON renders the table as indented JSON.
func (t *Table) JSON() (string, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// F formats a float compactly with the given precision.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}

// Sci formats a float in scientific notation with two decimals.
func Sci(v float64) string {
	return fmt.Sprintf("%.2e", v)
}
