package render

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Fig. X — sample", "fn", "slowdown")
	t.AddRow("pager-py", "1.31")
	t.AddRow("float-py", "1.04")
	t.AddNote("gmean = %.3f", 1.117)
	return t
}

func TestStringAlignment(t *testing.T) {
	out := sample().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, separator, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Fig. X") {
		t.Errorf("title missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "fn") || !strings.Contains(lines[1], "slowdown") {
		t.Errorf("header wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "--") {
		t.Errorf("separator wrong: %q", lines[2])
	}
	// Columns align: "slowdown" column starts at same offset in all rows.
	idx := strings.Index(lines[1], "slowdown")
	if !strings.HasPrefix(lines[3][idx:], "1.31") {
		t.Errorf("row misaligned: %q", lines[3])
	}
	if !strings.Contains(lines[5], "note: gmean = 1.117") {
		t.Errorf("note wrong: %q", lines[5])
	}
}

func TestAddRowPadding(t *testing.T) {
	tab := NewTable("t", "a", "b", "c")
	tab.AddRow("1")                // short: padded
	tab.AddRow("1", "2", "3", "4") // long: truncated
	if len(tab.Rows[0]) != 3 || tab.Rows[0][1] != "" {
		t.Errorf("short row not padded: %v", tab.Rows[0])
	}
	if len(tab.Rows[1]) != 3 {
		t.Errorf("long row not truncated: %v", tab.Rows[1])
	}
}

func TestCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow(`quo"ted`, "with,comma")
	out := tab.CSV()
	want := "a,b\n\"quo\"\"ted\",\"with,comma\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestJSON(t *testing.T) {
	out, err := sample().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"pager-py"`) || !strings.Contains(out, `"columns"`) {
		t.Errorf("JSON missing content: %s", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := F(1.23456, 2); got != "1.23" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(0.123); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Sci(12345.0); got != "1.23e+04" {
		t.Errorf("Sci = %q", got)
	}
}
