// Package cache models the processor cache hierarchy.
//
// The shared last-level cache (L3) is simulated structurally: a
// set-associative array with LRU replacement and per-owner occupancy and
// eviction accounting. Contention between co-running functions is therefore
// emergent — a memory-hungry neighbour really does evict a victim's lines,
// which is the physical effect Litmus pricing must detect and price.
//
// To keep the simulation fast the cache operates on coarse blocks (default
// 16KiB) rather than 64-byte lines, and the engine drives it with sampled
// accesses. Hit/miss *fractions* are preserved under this scaling; absolute
// miss counts are proportionally smaller, which is irrelevant because the
// paper normalises every miss count it reports (Figs. 1, 10).
//
// Private caches (L1/L2) are modelled analytically per hardware context in
// the engine: their behaviour depends only on the owning function (plus
// context-switch pollution), never on co-runners, so a structural simulation
// would add cost without adding interaction.
package cache

import (
	"fmt"
)

// Config describes a set-associative cache.
type Config struct {
	// Name labels the cache in stats output (e.g. "L3").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int64
	// BlockBytes is the allocation granularity. The simulator uses coarse
	// blocks (16KiB) for the shared cache; see the package comment.
	BlockBytes int64
	// Ways is the associativity.
	Ways int
	// HitLatency is the access latency in cycles on a hit.
	HitLatency float64
	// ScatterIndex hashes block addresses into sets instead of using the
	// low-order bits directly. Real LLCs hash physical addresses across
	// slices; without it, distinct sandboxes' buffers (which all start at
	// offset zero of their own address spaces) would collide pathologically
	// in the low sets.
	ScatterIndex bool
}

// Blocks returns the total number of blocks the cache holds.
func (c Config) Blocks() int { return int(c.SizeBytes / c.BlockBytes) }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Blocks() / c.Ways }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive size or block", c.Name)
	}
	if c.SizeBytes%c.BlockBytes != 0 {
		return fmt.Errorf("cache %q: size %d not a multiple of block %d", c.Name, c.SizeBytes, c.BlockBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive ways", c.Name)
	}
	if c.Blocks()%c.Ways != 0 {
		return fmt.Errorf("cache %q: %d blocks not divisible by %d ways", c.Name, c.Blocks(), c.Ways)
	}
	if c.Sets() == 0 {
		return fmt.Errorf("cache %q: zero sets", c.Name)
	}
	return nil
}

type way struct {
	tag     uint64
	owner   int
	lastUse uint64
	valid   bool
}

// OwnerStats aggregates one owner's interaction with a shared cache.
type OwnerStats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evicted   uint64 // this owner's blocks evicted by anyone
	Inflicted uint64 // evictions this owner caused on other owners
	Occupancy int    // blocks currently resident
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s OwnerStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, LRU-replaced shared cache with per-owner
// accounting. It is not safe for concurrent use; the engine drives it from a
// single goroutine per simulated machine.
type Cache struct {
	cfg    Config
	sets   [][]way
	nsets  uint64
	tick   uint64
	owners map[int]*OwnerStats

	totalAccesses uint64
	totalMisses   uint64
}

// New builds a cache from cfg. It panics on an invalid config: cache shapes
// are static machine descriptions fixed at simulator construction, so a bad
// one is a programming error, not a runtime condition.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]way, cfg.Sets())
	backing := make([]way, cfg.Sets()*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg:    cfg,
		sets:   sets,
		nsets:  uint64(cfg.Sets()),
		owners: make(map[int]*OwnerStats),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) ownerStats(owner int) *OwnerStats {
	s := c.owners[owner]
	if s == nil {
		s = &OwnerStats{}
		c.owners[owner] = s
	}
	return s
}

// Access looks up block (a block-granular address) on behalf of owner,
// inserting it on a miss and evicting the LRU way if the set is full.
// It reports whether the access hit.
func (c *Cache) Access(owner int, block uint64) bool {
	c.tick++
	c.totalAccesses++
	os := c.ownerStats(owner)
	os.Accesses++

	idx := block
	if c.cfg.ScatterIndex {
		idx = mix64(block)
	}
	set := c.sets[idx%c.nsets]
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == block {
			w.lastUse = c.tick
			if w.owner != owner {
				// Shared block adoption: last toucher owns it. Serverless
				// sandboxes do not share data blocks, but runtime images do;
				// transferring ownership keeps occupancy sums exact.
				c.ownerStats(w.owner).Occupancy--
				os.Occupancy++
				w.owner = owner
			}
			os.Hits++
			return true
		}
	}

	// Victim selection: first invalid way, otherwise LRU.
	victim := &set[0]
	for i := range set {
		w := &set[i]
		if !w.valid {
			victim = w
			break
		}
		if w.lastUse < victim.lastUse {
			victim = w
		}
	}

	// Miss path.
	c.totalMisses++
	os.Misses++
	if victim.valid {
		prev := c.ownerStats(victim.owner)
		prev.Evicted++
		prev.Occupancy--
		if victim.owner != owner {
			os.Inflicted++
		}
	}
	victim.tag = block
	victim.owner = owner
	victim.lastUse = c.tick
	victim.valid = true
	os.Occupancy++
	return false
}

// Owner returns a copy of the accumulated stats for owner.
func (c *Cache) Owner(owner int) OwnerStats {
	if s := c.owners[owner]; s != nil {
		return *s
	}
	return OwnerStats{}
}

// TotalAccesses returns the machine-wide access count.
func (c *Cache) TotalAccesses() uint64 { return c.totalAccesses }

// TotalMisses returns the machine-wide miss count — the quantity the Litmus
// probe reads as its supplementary congestion metric (paper §6, Fig. 10).
func (c *Cache) TotalMisses() uint64 { return c.totalMisses }

// Utilization returns the fraction of blocks currently valid.
func (c *Cache) Utilization() float64 {
	valid := 0
	for _, set := range c.sets {
		for _, w := range set {
			if w.valid {
				valid++
			}
		}
	}
	return float64(valid) / float64(c.cfg.Blocks())
}

// Release invalidates all blocks held by owner and forgets its stats. The
// platform calls this when a sandbox terminates; its cache footprint would
// otherwise linger as phantom occupancy.
func (c *Cache) Release(owner int) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].owner == owner {
				set[i].valid = false
			}
		}
	}
	delete(c.owners, owner)
}

// mix64 is the splitmix64 finalizer, a cheap full-avalanche hash used to
// scatter block addresses across sets.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ResetStats zeroes all counters (machine-wide and per-owner) while keeping
// cache contents, so measurement windows can be aligned to warm caches.
func (c *Cache) ResetStats() {
	c.totalAccesses = 0
	c.totalMisses = 0
	for owner, s := range c.owners {
		occ := s.Occupancy
		*s = OwnerStats{Occupancy: occ}
		c.owners[owner] = s
	}
}
