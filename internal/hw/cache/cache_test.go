package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg4x2() Config {
	// 8 blocks total: 4 sets x 2 ways, 1KiB blocks.
	return Config{Name: "t", SizeBytes: 8 * 1024, BlockBytes: 1024, Ways: 2, HitLatency: 10}
}

func TestConfigGeometry(t *testing.T) {
	c := cfg4x2()
	if c.Blocks() != 8 {
		t.Errorf("Blocks = %d, want 8", c.Blocks())
	}
	if c.Sets() != 4 {
		t.Errorf("Sets = %d, want 4", c.Sets())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, BlockBytes: 64, Ways: 2},
		{Name: "b", SizeBytes: 1024, BlockBytes: 0, Ways: 2},
		{Name: "c", SizeBytes: 1000, BlockBytes: 64, Ways: 2},   // size not multiple of block
		{Name: "d", SizeBytes: 1024, BlockBytes: 64, Ways: 0},   // no ways
		{Name: "e", SizeBytes: 1024, BlockBytes: 64, Ways: 5},   // 16 blocks % 5 != 0
		{Name: "f", SizeBytes: 1024, BlockBytes: 1024, Ways: 2}, // 1 block, 2 ways
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%q) should fail", c.Name)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 1, BlockBytes: 2, Ways: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(cfg4x2())
	if c.Access(1, 100) {
		t.Error("cold access should miss")
	}
	if !c.Access(1, 100) {
		t.Error("second access should hit")
	}
	s := c.Owner(1)
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("owner stats = %+v", s)
	}
	if s.Occupancy != 1 {
		t.Errorf("occupancy = %d, want 1", s.Occupancy)
	}
	if got := s.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(cfg4x2())
	// Blocks 0, 4, 8 all map to set 0 (4 sets); 2 ways.
	c.Access(1, 0)
	c.Access(1, 4)
	c.Access(1, 0) // touch 0 so 4 becomes LRU
	if c.Access(1, 8) {
		t.Error("conflict access should miss")
	}
	if !c.Access(1, 0) {
		t.Error("block 0 (MRU) should still be resident")
	}
	if c.Access(1, 4) {
		t.Error("block 4 (LRU) should have been evicted")
	}
}

func TestInterOwnerEvictionAccounting(t *testing.T) {
	c := New(cfg4x2())
	// Owner 1 fills set 0 (blocks 0 and 4).
	c.Access(1, 0)
	c.Access(1, 4)
	// Owner 2 storms the same set with two new blocks.
	c.Access(2, 8)
	c.Access(2, 12)
	s1, s2 := c.Owner(1), c.Owner(2)
	if s1.Evicted != 2 {
		t.Errorf("owner 1 Evicted = %d, want 2", s1.Evicted)
	}
	if s2.Inflicted != 2 {
		t.Errorf("owner 2 Inflicted = %d, want 2", s2.Inflicted)
	}
	if s1.Occupancy != 0 || s2.Occupancy != 2 {
		t.Errorf("occupancy = %d / %d, want 0 / 2", s1.Occupancy, s2.Occupancy)
	}
}

func TestSelfEvictionNotInflicted(t *testing.T) {
	c := New(cfg4x2())
	c.Access(1, 0)
	c.Access(1, 4)
	c.Access(1, 8) // evicts own block
	s := c.Owner(1)
	if s.Inflicted != 0 {
		t.Errorf("self-eviction counted as inflicted: %d", s.Inflicted)
	}
	if s.Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", s.Evicted)
	}
}

func TestOwnershipAdoptionOnSharedHit(t *testing.T) {
	c := New(cfg4x2())
	c.Access(1, 0)
	if !c.Access(2, 0) {
		t.Error("shared block should hit for second owner")
	}
	if got := c.Owner(1).Occupancy; got != 0 {
		t.Errorf("owner 1 occupancy after adoption = %d, want 0", got)
	}
	if got := c.Owner(2).Occupancy; got != 1 {
		t.Errorf("owner 2 occupancy after adoption = %d, want 1", got)
	}
}

func TestRelease(t *testing.T) {
	c := New(cfg4x2())
	c.Access(1, 0)
	c.Access(1, 1)
	c.Access(2, 2)
	c.Release(1)
	if c.Access(1, 0) {
		t.Error("released block should miss")
	}
	if !c.Access(2, 2) {
		t.Error("other owner's block must survive Release")
	}
	// Released owner's stats are forgotten (fresh accounting on return).
	if got := c.Owner(1).Accesses; got != 1 {
		t.Errorf("owner 1 accesses after release = %d, want 1 (the new access)", got)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := New(cfg4x2())
	c.Access(1, 0)
	c.Access(1, 0)
	c.ResetStats()
	if c.TotalAccesses() != 0 || c.TotalMisses() != 0 {
		t.Error("machine counters should be zero after ResetStats")
	}
	s := c.Owner(1)
	if s.Accesses != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Errorf("owner counters not reset: %+v", s)
	}
	if s.Occupancy != 1 {
		t.Errorf("occupancy must survive ResetStats, got %d", s.Occupancy)
	}
	if !c.Access(1, 0) {
		t.Error("contents must survive ResetStats")
	}
}

func TestUtilization(t *testing.T) {
	c := New(cfg4x2())
	if got := c.Utilization(); got != 0 {
		t.Errorf("empty utilization = %v", got)
	}
	c.Access(1, 0)
	c.Access(1, 1)
	if got := c.Utilization(); got != 0.25 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
}

func TestWorkingSetSmallerThanCacheConverges(t *testing.T) {
	// A working set that fits must converge to a 100% hit rate after warmup.
	c := New(Config{Name: "L3", SizeBytes: 64 * 1024, BlockBytes: 1024, Ways: 8, HitLatency: 40})
	rng := rand.New(rand.NewSource(42))
	const ws = 32 // blocks, cache holds 64
	for i := 0; i < 10*ws; i++ {
		c.Access(1, uint64(rng.Intn(ws)))
	}
	c.ResetStats()
	for i := 0; i < 1000; i++ {
		c.Access(1, uint64(rng.Intn(ws)))
	}
	if mr := c.Owner(1).MissRate(); mr != 0 {
		t.Errorf("warm fitting working set miss rate = %v, want 0", mr)
	}
}

func TestStreamingWorkloadAlwaysMisses(t *testing.T) {
	c := New(Config{Name: "L3", SizeBytes: 64 * 1024, BlockBytes: 1024, Ways: 8, HitLatency: 40})
	for i := uint64(0); i < 4096; i++ {
		if c.Access(1, i) {
			t.Fatalf("streaming access %d hit; never-reused blocks cannot hit", i)
		}
	}
}

// Property: occupancy bookkeeping is exact — the sum of all owners'
// occupancy equals the number of valid blocks, and never exceeds capacity.
func TestOccupancyInvariant(t *testing.T) {
	f := func(seed int64) bool {
		c := New(Config{Name: "p", SizeBytes: 32 * 1024, BlockBytes: 1024, Ways: 4, HitLatency: 1})
		rng := rand.New(rand.NewSource(seed))
		owners := []int{1, 2, 3}
		for i := 0; i < 500; i++ {
			o := owners[rng.Intn(len(owners))]
			c.Access(o, uint64(rng.Intn(100)))
			if rng.Intn(50) == 0 {
				c.Release(owners[rng.Intn(len(owners))])
			}
		}
		sum := 0
		for _, o := range owners {
			occ := c.Owner(o).Occupancy
			if occ < 0 {
				return false
			}
			sum += occ
		}
		valid := int(c.Utilization()*float64(c.Config().Blocks()) + 0.5)
		return sum == valid && sum <= c.Config().Blocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses == accesses for every owner and machine-wide.
func TestCounterConsistency(t *testing.T) {
	f := func(seed int64) bool {
		c := New(cfg4x2())
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			c.Access(rng.Intn(4), uint64(rng.Intn(32)))
		}
		var hits, misses, accesses uint64
		for o := 0; o < 4; o++ {
			s := c.Owner(o)
			if s.Hits+s.Misses != s.Accesses {
				return false
			}
			hits += s.Hits
			misses += s.Misses
			accesses += s.Accesses
		}
		return accesses == c.TotalAccesses() && misses == c.TotalMisses() && accesses == 300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(Config{Name: "L3", SizeBytes: 22 * 1024 * 1024, BlockBytes: 16 * 1024, Ways: 11, HitLatency: 40})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(i&7, addrs[i&4095])
	}
}
