package cpu

import (
	"testing"
	"testing/quick"
)

func TestTopologyValidate(t *testing.T) {
	good := []Topology{{Cores: 1, SMTWays: 1}, {Cores: 32, SMTWays: 2}}
	for _, tp := range good {
		if err := tp.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", tp, err)
		}
	}
	bad := []Topology{{Cores: 0, SMTWays: 1}, {Cores: 4, SMTWays: 0}, {Cores: 4, SMTWays: 3}, {Cores: -1, SMTWays: 1}}
	for _, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", tp)
		}
	}
}

func TestHWThreads(t *testing.T) {
	if got := (Topology{Cores: 16, SMTWays: 1}).HWThreads(); got != 16 {
		t.Errorf("HWThreads = %d, want 16", got)
	}
	if got := (Topology{Cores: 16, SMTWays: 2}).HWThreads(); got != 32 {
		t.Errorf("HWThreads = %d, want 32", got)
	}
}

func TestCoreOfAndSibling(t *testing.T) {
	tp := Topology{Cores: 4, SMTWays: 2}
	// Thread i and i+Cores are siblings on core i.
	for i := 0; i < 4; i++ {
		if tp.CoreOf(i) != i {
			t.Errorf("CoreOf(%d) = %d, want %d", i, tp.CoreOf(i), i)
		}
		if tp.CoreOf(i+4) != i {
			t.Errorf("CoreOf(%d) = %d, want %d", i+4, tp.CoreOf(i+4), i)
		}
		sib, ok := tp.SiblingOf(i)
		if !ok || sib != i+4 {
			t.Errorf("SiblingOf(%d) = %d, %v; want %d, true", i, sib, ok, i+4)
		}
		sib, ok = tp.SiblingOf(i + 4)
		if !ok || sib != i {
			t.Errorf("SiblingOf(%d) = %d, %v; want %d, true", i+4, sib, ok, i)
		}
	}
}

func TestSiblingOffWithoutSMT(t *testing.T) {
	tp := Topology{Cores: 4, SMTWays: 1}
	if sib, ok := tp.SiblingOf(2); ok || sib != -1 {
		t.Errorf("SiblingOf without SMT = %d, %v; want -1, false", sib, ok)
	}
}

// Property: SiblingOf is an involution sharing the same physical core.
func TestSiblingInvolution(t *testing.T) {
	tp := Topology{Cores: 16, SMTWays: 2}
	f := func(raw uint8) bool {
		hw := int(raw) % tp.HWThreads()
		sib, ok := tp.SiblingOf(hw)
		if !ok {
			return false
		}
		back, ok2 := tp.SiblingOf(sib)
		return ok2 && back == hw && tp.CoreOf(sib) == tp.CoreOf(hw) && sib != hw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedGovernor(t *testing.T) {
	g := Fixed{Hz: 2.8e9}
	for _, active := range []int{0, 1, 16, 32} {
		if got := g.FreqHz(active, 32); got != 2.8e9 {
			t.Errorf("Fixed.FreqHz(%d) = %v", active, got)
		}
	}
	if g.Name() != "fixed" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestTurboGovernor(t *testing.T) {
	g := Turbo{BaseHz: 2.8e9, MaxHz: 3.9e9, FullAt: 16}
	if got := g.FreqHz(1, 32); got != 3.9e9 {
		t.Errorf("single-core turbo = %v, want max", got)
	}
	if got := g.FreqHz(0, 32); got != 3.9e9 {
		t.Errorf("idle turbo = %v, want max", got)
	}
	if got := g.FreqHz(16, 32); got != 2.8e9 {
		t.Errorf("full turbo = %v, want base", got)
	}
	if got := g.FreqHz(32, 32); got != 2.8e9 {
		t.Errorf("overfull turbo = %v, want base", got)
	}
	mid := g.FreqHz(8, 32)
	if mid <= 2.8e9 || mid >= 3.9e9 {
		t.Errorf("mid turbo = %v, want strictly between base and max", mid)
	}
	if g.Name() != "turbo" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestTurboMonotoneNonIncreasing(t *testing.T) {
	g := Turbo{BaseHz: 2.8e9, MaxHz: 3.9e9, FullAt: 16}
	prev := g.FreqHz(0, 32)
	for active := 1; active <= 32; active++ {
		f := g.FreqHz(active, 32)
		if f > prev {
			t.Fatalf("turbo frequency increased with load at %d cores: %v > %v", active, f, prev)
		}
		prev = f
	}
}

func TestTurboZeroFullAtFallsBack(t *testing.T) {
	g := Turbo{BaseHz: 1e9, MaxHz: 2e9, FullAt: 0}
	if got := g.FreqHz(8, 8); got != 1e9 {
		t.Errorf("FullAt=0 should treat totalCores as full point, got %v", got)
	}
}
