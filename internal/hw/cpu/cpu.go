// Package cpu describes the processor topology (cores and SMT hardware
// threads) and the frequency governors the paper evaluates: the fixed
// 2.8 GHz configuration used in the main experiments and a turbo-style
// governor for the unfixed-frequency sensitivity study (paper §8, Fig. 18).
package cpu

import "fmt"

// Topology describes the visible processor: physical cores and SMT width.
type Topology struct {
	// Cores is the number of physical cores.
	Cores int
	// SMTWays is the number of hardware threads per core (1 = SMT off,
	// matching commercial FaaS platforms; 2 for the Fig. 21 study).
	SMTWays int
}

// Validate reports topology errors.
func (t Topology) Validate() error {
	if t.Cores <= 0 {
		return fmt.Errorf("cpu: non-positive core count")
	}
	if t.SMTWays < 1 || t.SMTWays > 2 {
		return fmt.Errorf("cpu: SMTWays must be 1 or 2, got %d", t.SMTWays)
	}
	return nil
}

// HWThreads returns the total number of hardware threads.
func (t Topology) HWThreads() int { return t.Cores * t.SMTWays }

// CoreOf returns the physical core a hardware thread belongs to. Threads are
// numbered so that thread i and its SMT sibling map to the same core.
func (t Topology) CoreOf(hwThread int) int { return hwThread % t.Cores }

// SiblingOf returns the SMT sibling of hwThread and true, or -1 and false
// when SMT is off.
func (t Topology) SiblingOf(hwThread int) (int, bool) {
	if t.SMTWays < 2 {
		return -1, false
	}
	if hwThread < t.Cores {
		return hwThread + t.Cores, true
	}
	return hwThread - t.Cores, true
}

// Governor decides the core clock frequency given how many physical cores
// are active. Implementations must be deterministic.
type Governor interface {
	// FreqHz returns the clock for the given number of active cores out of
	// totalCores.
	FreqHz(activeCores, totalCores int) float64
	// Name identifies the governor in experiment output.
	Name() string
}

// Fixed pins the clock to a single frequency, the configuration commercial
// clouds expose (paper §3: Google Cloud offers one fixed vCPU frequency; the
// authors pin their Xeons at 2.8 GHz).
type Fixed struct {
	Hz float64
}

// FreqHz implements Governor.
func (f Fixed) FreqHz(activeCores, totalCores int) float64 { return f.Hz }

// Name implements Governor.
func (f Fixed) Name() string { return "fixed" }

// Turbo models an Intel Turbo-style governor: the clock starts at MaxHz with
// few active cores and degrades linearly to BaseHz once FullAt cores are
// active. With a heavily loaded serverless machine it sits at BaseHz almost
// always, which is why the paper measures a negligible pricing effect.
type Turbo struct {
	BaseHz float64
	MaxHz  float64
	// FullAt is the active-core count at which the clock reaches BaseHz.
	FullAt int
}

// FreqHz implements Governor.
func (t Turbo) FreqHz(activeCores, totalCores int) float64 {
	if activeCores <= 1 {
		return t.MaxHz
	}
	full := t.FullAt
	if full <= 1 {
		full = totalCores
	}
	if activeCores >= full {
		return t.BaseHz
	}
	frac := float64(activeCores-1) / float64(full-1)
	return t.MaxHz - (t.MaxHz-t.BaseHz)*frac
}

// Name implements Governor.
func (t Turbo) Name() string { return "turbo" }
