package pmu

import (
	"math"
	"testing"
	"testing/quick"
)

func sample() Counters {
	return Counters{
		Instructions: 1000, Cycles: 2000, StallL2Miss: 500,
		L2Misses: 50, L3Hits: 30, L3Misses: 20, DRAMBytes: 1 << 20, ContextSwitches: 2,
	}
}

func TestSubAdd(t *testing.T) {
	a := sample()
	b := a.Add(a)
	if b.Cycles != 4000 || b.Instructions != 2000 || b.L3Misses != 40 {
		t.Errorf("Add = %+v", b)
	}
	d := b.Sub(a)
	if d != a {
		t.Errorf("Sub = %+v, want %+v", d, a)
	}
	zero := a.Sub(a)
	if zero != (Counters{}) {
		t.Errorf("x.Sub(x) = %+v, want zero", zero)
	}
}

func TestIPC(t *testing.T) {
	c := sample()
	if got := c.IPC(); got != 0.5 {
		t.Errorf("IPC = %v, want 0.5", got)
	}
	if got := (Counters{}).IPC(); got != 0 {
		t.Errorf("zero IPC = %v", got)
	}
}

func TestPrivateSharedSplit(t *testing.T) {
	c := sample()
	if got := c.PrivateCycles(); got != 1500 {
		t.Errorf("PrivateCycles = %v, want 1500", got)
	}
	if got := c.SharedCycles(); got != 500 {
		t.Errorf("SharedCycles = %v, want 500", got)
	}
	//litmus:float-eq-ok the split is computed by exact subtraction from the total
	if c.PrivateCycles()+c.SharedCycles() != c.Cycles {
		t.Error("private + shared must equal total cycles")
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Errorf("valid counters rejected: %v", err)
	}
	bad := []Counters{
		{Cycles: -1},
		{Cycles: 100, StallL2Miss: 200},
		{Cycles: 100, L2Misses: 10, L3Hits: 8, L3Misses: 8},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad counters %d accepted: %+v", i, c)
		}
	}
}

// Property: Add and Sub are inverse and Add is commutative.
func TestAddSubProperty(t *testing.T) {
	f := func(i1, c1, s1, i2, c2, s2 float64) bool {
		a := Counters{Instructions: i1, Cycles: c1, StallL2Miss: s1}
		b := Counters{Instructions: i2, Cycles: c2, StallL2Miss: s2}
		if a.Add(b) != b.Add(a) {
			return false
		}
		rt := a.Add(b).Sub(b)
		return close(rt.Instructions, a.Instructions) && close(rt.Cycles, a.Cycles) && close(rt.StallL2Miss, a.StallL2Miss)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return true // not meaningful for this property
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func TestTimelineBasic(t *testing.T) {
	tl := NewTimeline(1e-3)
	// Two 0.5 ms slices at IPC 2, then one 1 ms slice at IPC 1.
	tl.Record(0.5e-3, 1000, 2000)
	tl.Record(0.5e-3, 1000, 2000)
	tl.Record(1e-3, 1000, 1000)
	pts := tl.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if math.Abs(pts[0].IPC-2) > 1e-9 {
		t.Errorf("bucket 0 IPC = %v, want 2", pts[0].IPC)
	}
	if math.Abs(pts[1].IPC-1) > 1e-9 {
		t.Errorf("bucket 1 IPC = %v, want 1", pts[1].IPC)
	}
	if math.Abs(pts[0].TimeMs-1) > 1e-9 || math.Abs(pts[1].TimeMs-2) > 1e-9 {
		t.Errorf("timestamps = %v, %v", pts[0].TimeMs, pts[1].TimeMs)
	}
}

func TestTimelineStraddle(t *testing.T) {
	tl := NewTimeline(1e-3)
	// One 2.5 ms slice at constant IPC 1.5 must produce two full buckets at
	// the same IPC and leave a partial.
	tl.Record(2.5e-3, 1000, 1500)
	pts := tl.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 before Close", len(pts))
	}
	for i, p := range pts {
		if math.Abs(p.IPC-1.5) > 1e-9 {
			t.Errorf("bucket %d IPC = %v, want 1.5", i, p.IPC)
		}
	}
	tl.Close()
	pts = tl.Points()
	if len(pts) != 3 {
		t.Fatalf("points after Close = %d, want 3", len(pts))
	}
	if math.Abs(pts[2].IPC-1.5) > 1e-9 {
		t.Errorf("partial bucket IPC = %v, want 1.5", pts[2].IPC)
	}
	if math.Abs(pts[2].TimeMs-2.5) > 1e-9 {
		t.Errorf("partial bucket time = %v, want 2.5", pts[2].TimeMs)
	}
}

func TestTimelineCloseIdempotentWhenEmpty(t *testing.T) {
	tl := NewTimeline(1e-3)
	tl.Close()
	if len(tl.Points()) != 0 {
		t.Error("Close on empty timeline must not emit points")
	}
	tl.Record(1e-3, 100, 100)
	tl.Close()
	tl.Close()
	if len(tl.Points()) != 1 {
		t.Errorf("points = %d, want 1", len(tl.Points()))
	}
}

func TestTimelinePanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTimeline(0) should panic")
		}
	}()
	NewTimeline(0)
}
