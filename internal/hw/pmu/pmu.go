// Package pmu implements the performance monitoring unit the simulator
// exposes to the platform — the counters the paper reads through Linux perf:
// retired instructions, core cycles, cycles stalled on L2 misses
// (cycle_activity.stalls_l2_miss — the source of T_shared), L2 and L3 miss
// counts, and a millisecond-granular IPC timeline (used to draw Fig. 6).
package pmu

import "fmt"

// Counters is a snapshot of one hardware context's event counts. Values are
// cumulative; subtract two snapshots to measure a window.
type Counters struct {
	Instructions float64
	// Cycles counts core clock cycles during which this context occupied a
	// hardware thread.
	Cycles float64
	// StallL2Miss counts cycles the context was stalled waiting on accesses
	// that missed the private L2 — time spent in shared resources. This is
	// the paper's cycle_activity.stalls_l2_miss.
	StallL2Miss float64
	// L2Misses counts demand accesses that missed the private L2.
	L2Misses float64
	// L3Hits counts L2 misses served by the shared L3.
	L3Hits float64
	// L3Misses counts L2 misses that went to DRAM.
	L3Misses float64
	// DRAMBytes is the off-chip traffic attributable to the context.
	DRAMBytes float64
	// ContextSwitches counts scheduler preemptions of the context.
	ContextSwitches float64
}

// Sub returns the delta c - prev, the window between two snapshots.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Instructions:    c.Instructions - prev.Instructions,
		Cycles:          c.Cycles - prev.Cycles,
		StallL2Miss:     c.StallL2Miss - prev.StallL2Miss,
		L2Misses:        c.L2Misses - prev.L2Misses,
		L3Hits:          c.L3Hits - prev.L3Hits,
		L3Misses:        c.L3Misses - prev.L3Misses,
		DRAMBytes:       c.DRAMBytes - prev.DRAMBytes,
		ContextSwitches: c.ContextSwitches - prev.ContextSwitches,
	}
}

// Add returns the sum of two counter sets.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Instructions:    c.Instructions + o.Instructions,
		Cycles:          c.Cycles + o.Cycles,
		StallL2Miss:     c.StallL2Miss + o.StallL2Miss,
		L2Misses:        c.L2Misses + o.L2Misses,
		L3Hits:          c.L3Hits + o.L3Hits,
		L3Misses:        c.L3Misses + o.L3Misses,
		DRAMBytes:       c.DRAMBytes + o.DRAMBytes,
		ContextSwitches: c.ContextSwitches + o.ContextSwitches,
	}
}

// IPC returns instructions per cycle over the counted window (0 when no
// cycles elapsed).
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.Instructions / c.Cycles
}

// PrivateCycles returns Cycles - StallL2Miss: the cycles spent on resources
// private to the tenant (paper §5.2: T_private · f).
func (c Counters) PrivateCycles() float64 { return c.Cycles - c.StallL2Miss }

// SharedCycles returns the cycles stalled on shared resources
// (paper §5.2: T_shared · f).
func (c Counters) SharedCycles() float64 { return c.StallL2Miss }

// Validate reports impossible counter relationships; used by tests and by
// the engine's internal consistency checks.
func (c Counters) Validate() error {
	if c.Cycles < 0 || c.Instructions < 0 || c.StallL2Miss < 0 {
		return fmt.Errorf("pmu: negative counters: %+v", c)
	}
	if c.StallL2Miss > c.Cycles*(1+1e-9) {
		return fmt.Errorf("pmu: stall cycles %v exceed total cycles %v", c.StallL2Miss, c.Cycles)
	}
	if c.L3Hits+c.L3Misses > c.L2Misses*(1+1e-9) {
		return fmt.Errorf("pmu: L3 hits+misses %v exceed L2 misses %v", c.L3Hits+c.L3Misses, c.L2Misses)
	}
	return nil
}

// TimelinePoint is one sample of the IPC timeline.
type TimelinePoint struct {
	// TimeMs is the sample's position relative to the start of the traced
	// window, in milliseconds.
	TimeMs float64
	IPC    float64
}

// Timeline accumulates an IPC trace with a fixed sampling period, mirroring
// the paper's per-millisecond startup IPC traces (Fig. 6). The zero value is
// unusable; call NewTimeline.
type Timeline struct {
	periodSec float64
	elapsed   float64 // within current bucket
	cycles    float64
	instrs    float64
	points    []TimelinePoint
	t         float64 // total traced seconds
}

// NewTimeline creates a timeline sampling every periodSec seconds (1e-3 for
// the paper's 1 ms granularity).
func NewTimeline(periodSec float64) *Timeline {
	if periodSec <= 0 {
		panic("pmu: non-positive timeline period")
	}
	return &Timeline{periodSec: periodSec}
}

// Record folds a simulation slice into the timeline: during dtSec the context
// retired instrs instructions over cycles cycles. Slices may straddle bucket
// boundaries; they are split proportionally.
func (tl *Timeline) Record(dtSec, cycles, instrs float64) {
	for dtSec > 0 {
		room := tl.periodSec - tl.elapsed
		if dtSec < room {
			tl.elapsed += dtSec
			tl.cycles += cycles
			tl.instrs += instrs
			return
		}
		frac := room / dtSec
		tl.cycles += cycles * frac
		tl.instrs += instrs * frac
		tl.flush()
		dtSec -= room
		cycles *= 1 - frac
		instrs *= 1 - frac
	}
}

func (tl *Timeline) flush() {
	ipc := 0.0
	if tl.cycles > 0 {
		ipc = tl.instrs / tl.cycles
	}
	tl.t += tl.periodSec
	tl.points = append(tl.points, TimelinePoint{TimeMs: tl.t * 1e3, IPC: ipc})
	tl.elapsed, tl.cycles, tl.instrs = 0, 0, 0
}

// Close flushes a trailing partial bucket, if any.
func (tl *Timeline) Close() {
	if tl.elapsed > 0 {
		// Scale the partial bucket as if it were full so IPC stays unbiased.
		tl.t += tl.elapsed
		ipc := 0.0
		if tl.cycles > 0 {
			ipc = tl.instrs / tl.cycles
		}
		tl.points = append(tl.points, TimelinePoint{TimeMs: tl.t * 1e3, IPC: ipc})
		tl.elapsed, tl.cycles, tl.instrs = 0, 0, 0
	}
}

// Points returns the accumulated samples.
func (tl *Timeline) Points() []TimelinePoint { return tl.points }
