package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func testCfg() Config {
	return Config{
		PeakBytesPerSec:   100e9,
		BaseLatencyCycles: 200,
		QueueSensitivity:  1,
		MaxUtilization:    0.95,
	}
}

func TestValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{PeakBytesPerSec: 0, BaseLatencyCycles: 1, MaxUtilization: 0.9},
		{PeakBytesPerSec: 1, BaseLatencyCycles: 0, MaxUtilization: 0.9},
		{PeakBytesPerSec: 1, BaseLatencyCycles: 1, MaxUtilization: 0},
		{PeakBytesPerSec: 1, BaseLatencyCycles: 1, MaxUtilization: 1},
		{PeakBytesPerSec: 1, BaseLatencyCycles: 1, MaxUtilization: 0.9, QueueSensitivity: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestUnloadedLatency(t *testing.T) {
	s := New(testCfg())
	s.EndQuantum(1e-3)
	if got := s.LatencyCycles(); got != 200 {
		t.Errorf("unloaded latency = %v, want 200", got)
	}
	if got := s.ThroughputScale(); got != 1 {
		t.Errorf("unloaded throughput scale = %v, want 1", got)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	s := New(testCfg())
	// 100 GB/s peak, 1 ms quantum → 100 MB saturates.
	s.Demand(50e6)
	s.EndQuantum(1e-3)
	if got := s.Utilization(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	// Demand accumulator must reset between quanta.
	s.EndQuantum(1e-3)
	if got := s.Utilization(); got != 0 {
		t.Errorf("utilization after empty quantum = %v, want 0", got)
	}
}

func TestNegativeDemandIgnored(t *testing.T) {
	s := New(testCfg())
	s.Demand(-5)
	s.EndQuantum(1e-3)
	if got := s.Utilization(); got != 0 {
		t.Errorf("negative demand leaked into utilization: %v", got)
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	cfg := testCfg()
	prev := 0.0
	for u := 0.0; u <= 2.0; u += 0.05 {
		l := LatencyAt(cfg, u)
		if l < prev {
			t.Fatalf("latency not monotone at u=%v: %v < %v", u, l, prev)
		}
		prev = l
	}
}

func TestLatencyCapped(t *testing.T) {
	cfg := testCfg()
	atCap := LatencyAt(cfg, cfg.MaxUtilization)
	//litmus:float-eq-ok differential: above the cap both calls take the identical clamped path
	if got := LatencyAt(cfg, 5); got != atCap {
		t.Errorf("latency above cap = %v, want capped %v", got, atCap)
	}
	if math.IsInf(atCap, 0) || math.IsNaN(atCap) {
		t.Errorf("capped latency not finite: %v", atCap)
	}
	// M/M/1 at u=0.5 with sensitivity 1: 200 * (1 + 0.5/0.5) = 400.
	if got := LatencyAt(cfg, 0.5); math.Abs(got-400) > 1e-9 {
		t.Errorf("latency at 0.5 = %v, want 400", got)
	}
}

func TestThroughputThrottlesAboveSaturation(t *testing.T) {
	s := New(testCfg())
	s.Demand(200e6) // 2x saturation for a 1 ms quantum
	s.EndQuantum(1e-3)
	if got := s.Utilization(); math.Abs(got-2) > 1e-12 {
		t.Errorf("utilization = %v, want 2", got)
	}
	if got := s.ThroughputScale(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("throughput scale = %v, want 0.5", got)
	}
}

func TestTotalBytes(t *testing.T) {
	s := New(testCfg())
	s.Demand(10)
	s.EndQuantum(1e-3)
	s.Demand(20)
	s.EndQuantum(1e-3)
	if got := s.TotalBytes(); got != 30 {
		t.Errorf("TotalBytes = %v, want 30", got)
	}
}

func TestZeroQuantumSafe(t *testing.T) {
	s := New(testCfg())
	s.Demand(100)
	s.EndQuantum(0)
	if got := s.Utilization(); got != 0 {
		t.Errorf("zero quantum should leave utilization 0, got %v", got)
	}
	s.Demand(50e6)
	s.EndQuantum(1e-3) // accumulator must have been cleared by zero quantum
	if got := s.Utilization(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5 (stale demand leaked)", got)
	}
}

// Property: latency is always >= base latency and finite.
func TestLatencyBoundsProperty(t *testing.T) {
	cfg := testCfg()
	f := func(u float64) bool {
		l := LatencyAt(cfg, u)
		return l >= cfg.BaseLatencyCycles && !math.IsInf(l, 0) && !math.IsNaN(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
