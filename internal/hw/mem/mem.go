// Package mem models the off-chip memory system: a finite-bandwidth channel
// whose effective access latency inflates as aggregate demand approaches the
// peak, the congestion mechanism MB-Gen exploits in the paper.
//
// The model is an open M/M/1-style queueing approximation: at utilisation u
// the queueing component of latency scales with u/(1-u), capped so the
// simulator stays numerically stable when offered load exceeds capacity.
// When offered bandwidth exceeds the peak, the channel additionally throttles
// throughput (callers get fewer serviced bytes per quantum), which is what
// gives MB-Gen its self-imposed bottleneck (paper Fig. 1: MB-Gen's L2 misses
// trail CT-Gen's because MB-Gen stalls on its own memory traffic).
package mem

import "fmt"

// Config describes the memory system.
type Config struct {
	// PeakBytesPerSec is the saturation bandwidth of the channel.
	PeakBytesPerSec float64
	// BaseLatencyCycles is the unloaded DRAM access latency, in core cycles
	// at the machine's nominal frequency.
	BaseLatencyCycles float64
	// QueueSensitivity scales the queueing term; ~1 reproduces M/M/1.
	QueueSensitivity float64
	// MaxUtilization caps the utilisation used in the queueing formula to
	// keep latency finite (typically 0.95).
	MaxUtilization float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PeakBytesPerSec <= 0 {
		return fmt.Errorf("mem: non-positive peak bandwidth")
	}
	if c.BaseLatencyCycles <= 0 {
		return fmt.Errorf("mem: non-positive base latency")
	}
	if c.MaxUtilization <= 0 || c.MaxUtilization >= 1 {
		return fmt.Errorf("mem: MaxUtilization must be in (0,1)")
	}
	if c.QueueSensitivity < 0 {
		return fmt.Errorf("mem: negative queue sensitivity")
	}
	return nil
}

// System tracks per-quantum demand and answers latency queries. The engine
// aggregates every context's DRAM traffic into the System each quantum, then
// uses the resulting utilisation for the next quantum's stall costs (a
// one-quantum lag keeps the fixed point stable and cheap).
type System struct {
	cfg Config

	demandBytes float64 // accumulated this quantum
	utilization float64 // resolved at last EndQuantum
	totalBytes  float64
}

// New builds a memory system. It panics on an invalid config (machine
// descriptions are fixed at construction; see cache.New).
func New(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &System{cfg: cfg}
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Demand adds bytes of DRAM traffic to the current quantum.
func (s *System) Demand(bytes float64) {
	if bytes > 0 {
		s.demandBytes += bytes
		s.totalBytes += bytes
	}
}

// EndQuantum folds the quantum's demand into the utilisation estimate and
// resets the accumulator. quantumSec is the quantum's wall-clock length.
func (s *System) EndQuantum(quantumSec float64) {
	if quantumSec <= 0 {
		s.demandBytes = 0
		return
	}
	s.utilization = s.demandBytes / (s.cfg.PeakBytesPerSec * quantumSec)
	s.demandBytes = 0
}

// Utilization returns the offered-load utilisation resolved at the last
// EndQuantum. It may exceed 1 when demand outstrips the channel.
func (s *System) Utilization() float64 { return s.utilization }

// TotalBytes returns cumulative DRAM traffic, for stats and tests.
func (s *System) TotalBytes() float64 { return s.totalBytes }

// LatencyCycles returns the effective DRAM latency at the current
// utilisation, in core cycles.
func (s *System) LatencyCycles() float64 {
	return LatencyAt(s.cfg, s.utilization)
}

// ThroughputScale returns the factor (≤ 1) by which offered traffic is
// actually serviced: 1 below saturation, peak/offered above it.
func (s *System) ThroughputScale() float64 {
	if s.utilization <= 1 {
		return 1
	}
	return 1 / s.utilization
}

// LatencyAt computes the loaded latency for an arbitrary utilisation under
// cfg. Exposed for model tests and for offline what-if queries.
func LatencyAt(cfg Config, util float64) float64 {
	u := util
	if u < 0 {
		u = 0
	}
	if u > cfg.MaxUtilization {
		u = cfg.MaxUtilization
	}
	queue := cfg.QueueSensitivity * u / (1 - u)
	return cfg.BaseLatencyCycles * (1 + queue)
}
