// Probemonitor: the paper's Fig. 7 scenario — Litmus tests as a live
// congestion monitor. A memory-intensive "Function #1" starts and stops on
// one core while probes on another core read the machine state.
//
//	go run ./examples/probemonitor
package main

import (
	"fmt"
	"log"

	litmus "repro"
)

func main() {
	const seed = 5

	pcfg := litmus.DefaultPlatformConfig(seed)
	pcfg.BodyScale = 0.2
	pcfg.StartupScale = 0.2

	fmt.Println("calibrating…")
	cal, err := litmus.Calibrate(litmus.CalibratorConfig{Platform: pcfg})
	if err != nil {
		log.Fatal(err)
	}
	models, err := litmus.FitModels(cal)
	if err != nil {
		log.Fatal(err)
	}

	p := litmus.NewPlatform(pcfg)
	m := p.Machine()

	// Light background load on cores 1-2 (like Fig. 7's short functions).
	p.StartChurn([]*litmus.FunctionSpec{
		litmus.FunctionsByAbbr()["auth-py"],
		litmus.FunctionsByAbbr()["fib-go"],
	}, 2, []int{1, 2})
	p.Warm(10e-3)

	probe := func(label string) {
		pr, err := p.ProbeStartup(litmus.ProbeFunction(litmus.Python), 3, 300)
		if err != nil {
			log.Fatal(err)
		}
		reading, err := models.NewReading(litmus.Python, pr)
		if err != nil {
			log.Fatal(err)
		}
		est, err := models.Estimate(reading)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%6.1f ms  %-16s est. slowdown %.3f  (MB weight %.2f, L3 misses %.2e)\n",
			m.Now()*1e3, label, est.TotalSlow, est.Weight, pr.MachineL3Misses)
	}

	probe("machine idle")

	// Function #1: a memory-bandwidth hog lands on core 0.
	hog := hogSpec()
	h := m.Spawn(hog, 0)
	p.Warm(10e-3)
	probe("hog running")
	probe("hog running")

	m.Remove(h.ID)
	p.Warm(10e-3)
	probe("hog finished")

	// Function #2 arrives.
	h2 := m.Spawn(hogSpec(), 0)
	p.Warm(10e-3)
	probe("hog #2 running")
	m.Remove(h2.ID)
	p.Warm(10e-3)
	probe("machine quiet")

	fmt.Println("\nthe probe tracks the hog's lifetime without instrumenting it (Fig. 7).")
}

// hogSpec is Fig. 7's memory-intensive function: a finite streaming kernel.
func hogSpec() *litmus.FunctionSpec {
	return &litmus.FunctionSpec{
		Name: "hog", Abbr: "hog", Language: litmus.Go, Suite: "example", MemoryMB: 2048,
		Body: []litmus.Phase{{
			Name: "stream", Instr: 400e6, CPIBase: 0.5, L2MPKI: 28,
			WSBlocks: 4096, Pattern: litmus.Scan, MLP: 8, DirtyFrac: 0.3,
		}},
	}
}
