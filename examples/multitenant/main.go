// Multitenant: the paper's Fig. 11 scenario as a program, billed through
// the versioned pricing service. Fourteen tenant functions are priced on a
// machine churning 26 co-runners: the measurements travel through one
// /v2/quotes batch call, the ideal oracle prices them locally for
// comparison, and the provider-side tenant ledger reports the fleet's
// aggregate bill.
//
//	go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"time"

	litmus "repro"
)

func main() {
	const seed = 11

	pcfg := litmus.DefaultPlatformConfig(seed)
	pcfg.BodyScale = 0.15
	pcfg.StartupScale = 0.2

	fmt.Println("calibrating provider tables…")
	cal, err := litmus.Calibrate(litmus.CalibratorConfig{Platform: pcfg})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("measuring solo baselines…")
	tenants := litmus.TestSet()
	baselines, err := litmus.Baselines(pcfg, tenants)
	if err != nil {
		log.Fatal(err)
	}

	// The provider's pricing service, served over HTTP as in production.
	server, err := litmus.NewPricingServer(litmus.PricingServerConfig{Calibration: cal})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	client := litmus.NewPricingClient("http://" + ln.Addr().String())

	p := litmus.NewPlatform(pcfg)
	p.StartChurn(litmus.Catalog(), 26, litmus.Threads(1, 26))
	p.Warm(30e-3)

	// Measure all fourteen tenants, then bill them in one batch call under
	// a single fleet tenant so the ledger shows the aggregate.
	const fleet = "fig11-fleet"
	var reqs []litmus.QuoteRequest
	var usages []litmus.Usage
	for _, spec := range tenants {
		rec, err := p.Invoke(spec, 0, 600)
		if err != nil {
			log.Fatal(err)
		}
		u := litmus.UsageFromRecord(rec)
		usages = append(usages, u)
		reqs = append(reqs, litmus.QuoteRequest{Usage: u, Tenant: fleet})
	}
	ctx := context.Background()
	items, err := client.QuoteBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}

	ideal := litmus.NewIdealPricer(1, baselines)
	fmt.Printf("\n%-12s %10s %10s %10s %9s %9s\n",
		"tenant", "commercial", "litmus", "ideal", "L-disc", "I-disc")
	var sumLog, sumLogIdeal float64
	for i, item := range items {
		if item.Error != nil {
			log.Fatal(item.Error)
		}
		ql := item.Quote
		qi, err := ideal.Quote(usages[i])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.2f %10.2f %10.2f %8.1f%% %8.1f%%\n",
			ql.Abbr, ql.Commercial, ql.Price, qi.Price,
			ql.Discount*100, qi.Discount()*100)
		sumLog += math.Log(ql.Price / ql.Commercial)
		sumLogIdeal += math.Log(qi.Price / qi.Commercial)
	}
	n := float64(len(tenants))
	gl := math.Exp(sumLog / n)
	gi := math.Exp(sumLogIdeal / n)
	fmt.Printf("\ngmean normalized price: litmus %.3f (discount %.1f%%), ideal %.3f (discount %.1f%%)\n",
		gl, (1-gl)*100, gi, (1-gi)*100)
	fmt.Printf("paper (Fig. 11): litmus 10.7%% vs ideal 10.3%%\n")

	sum, err := client.TenantSummary(ctx, fleet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovider ledger for %s: %d invocations, commercial %.2f → billed %.2f MB·s (aggregate discount %.1f%%)\n",
		fleet, sum.Invocations, sum.Commercial, sum.Billed, 100*sum.Discount)
}
