// Multitenant: the paper's Fig. 11 scenario as a program. Fourteen tenant
// functions are priced on a machine churning 26 co-runners; the program
// prints each tenant's commercial, Litmus and ideal bill and the aggregate
// discounts.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"math"

	litmus "repro"
)

func main() {
	const seed = 11

	pcfg := litmus.DefaultPlatformConfig(seed)
	pcfg.BodyScale = 0.15
	pcfg.StartupScale = 0.2

	fmt.Println("calibrating provider tables…")
	cal, err := litmus.Calibrate(litmus.CalibratorConfig{Platform: pcfg})
	if err != nil {
		log.Fatal(err)
	}
	models, err := litmus.FitModels(cal)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("measuring solo baselines…")
	tenants := litmus.TestSet()
	baselines, err := litmus.Baselines(pcfg, tenants)
	if err != nil {
		log.Fatal(err)
	}

	p := litmus.NewPlatform(pcfg)
	p.StartChurn(litmus.Catalog(), 26, litmus.Threads(1, 26))
	p.Warm(30e-3)

	pricer := litmus.NewLitmusPricer(models, 1)
	ideal := litmus.NewIdealPricer(1, baselines)

	fmt.Printf("\n%-12s %10s %10s %10s %9s %9s\n",
		"tenant", "commercial", "litmus", "ideal", "L-disc", "I-disc")
	var sumLog, sumLogIdeal float64
	for _, spec := range tenants {
		rec, err := p.Invoke(spec, 0, 600)
		if err != nil {
			log.Fatal(err)
		}
		ql, err := pricer.Quote(rec)
		if err != nil {
			log.Fatal(err)
		}
		qi, err := ideal.Quote(rec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.2f %10.2f %10.2f %8.1f%% %8.1f%%\n",
			spec.Abbr, ql.Commercial, ql.Price, qi.Price,
			ql.Discount()*100, qi.Discount()*100)
		sumLog += math.Log(ql.Price / ql.Commercial)
		sumLogIdeal += math.Log(qi.Price / qi.Commercial)
	}
	n := float64(len(tenants))
	gl := math.Exp(sumLog / n)
	gi := math.Exp(sumLogIdeal / n)
	fmt.Printf("\ngmean normalized price: litmus %.3f (discount %.1f%%), ideal %.3f (discount %.1f%%)\n",
		gl, (1-gl)*100, gi, (1-gi)*100)
	fmt.Printf("paper (Fig. 11): litmus 10.7%% vs ideal 10.3%%\n")
}
