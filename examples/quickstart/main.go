// Quickstart: calibrate a simulated machine, congest it, run one function,
// and compare the commercial, Litmus and ideal bills.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	litmus "repro"
)

func main() {
	const seed = 42

	// A scaled-down platform so the whole example runs in seconds. Scale 1
	// reproduces the full-size configuration.
	pcfg := litmus.DefaultPlatformConfig(seed)
	pcfg.BodyScale = 0.2
	pcfg.StartupScale = 0.2

	// 1. Provider-side: build the congestion + performance tables by
	//    sweeping the CT-Gen/MB-Gen stress levels, then fit the models.
	fmt.Println("calibrating (CT-Gen/MB-Gen sweeps)…")
	cal, err := litmus.Calibrate(litmus.CalibratorConfig{Platform: pcfg})
	if err != nil {
		log.Fatal(err)
	}
	models, err := litmus.FitModels(cal)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Tenant-side oracle for comparison: the function's solo cost.
	target := litmus.FunctionsByAbbr()["dyn-py"]
	solo, err := litmus.MeasureSolo(pcfg, target)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Congest a machine the way the paper does: 26 co-running functions,
	//    one per core, randomly churned.
	p := litmus.NewPlatform(pcfg)
	p.StartChurn(litmus.Catalog(), 26, litmus.Threads(1, 26))
	p.Warm(30e-3)

	// 4. Invoke the tenant's function. The Litmus test rides its startup.
	rec, err := p.Invoke(target, 0, 600)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Price it three ways.
	commercial := litmus.NewCommercialPricer(1)
	pricer := litmus.NewLitmusPricer(models, 1)
	ideal := litmus.NewIdealPricer(1, map[string]litmus.Solo{target.Abbr: solo})

	usage := litmus.UsageFromRecord(rec)
	qc, _ := commercial.Quote(usage)
	ql, err := pricer.Quote(usage)
	if err != nil {
		log.Fatal(err)
	}
	qi, _ := ideal.Quote(usage)

	fmt.Printf("\nfunction %s on a 26-co-runner machine:\n", target.Abbr)
	fmt.Printf("  occupancy: T_private %.2f ms, T_shared %.2f ms (solo total %.2f ms)\n",
		rec.TPrivate*1e3, rec.TShared*1e3, solo.Total()*1e3)
	fmt.Printf("  probe:     startup %.2f ms, machine L3 misses %.2e (MB weight %.2f)\n",
		(rec.Probe.TPrivateSec+rec.Probe.TSharedSec)*1e3, rec.Probe.MachineL3Misses, ql.Estimate.Weight)
	fmt.Printf("  commercial price: %8.2f MB·s (no discount)\n", qc.Price)
	fmt.Printf("  litmus price:     %8.2f MB·s (discount %4.1f%%, R_priv %.3f, R_shared %.3f)\n",
		ql.Price, ql.Discount()*100, ql.RPrivate, ql.RShared)
	fmt.Printf("  ideal price:      %8.2f MB·s (discount %4.1f%%)\n", qi.Price, qi.Discount()*100)
	fmt.Printf("\nlitmus lands within %.1f points of the ideal discount.\n",
		100*abs(ql.Discount()-qi.Discount()))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
