// Billingserver: runs the pricingd HTTP pricing flow in-process on the
// reusable service layer. It calibrates a machine, serves the versioned
// pricing API on a local port, then plays a tenant agent: it measures a
// function on a congested machine and bills it through the typed client —
// a single /v2 quote, a batch, and the tenant's ledger summary — before
// switching to the resource-oriented /v3 surface: it streams usage records
// as NDJSON under an idempotency key, proves a replay cannot double-bill,
// and reads the tenant's windowed statement back.
//
//	go run ./examples/billingserver
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	litmus "repro"
)

func main() {
	const seed = 3

	pcfg := litmus.DefaultPlatformConfig(seed)
	pcfg.BodyScale = 0.2
	pcfg.StartupScale = 0.2

	fmt.Println("calibrating provider tables…")
	cal, err := litmus.Calibrate(litmus.CalibratorConfig{Platform: pcfg})
	if err != nil {
		log.Fatal(err)
	}

	// Serve the quoting API (the same handler stack as cmd/pricingd).
	server, err := litmus.NewPricingServer(litmus.PricingServerConfig{Calibration: cal})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("pricing API on http://%s\n", ln.Addr())

	// Tenant agent: run functions on a congested machine and bill them.
	p := litmus.NewPlatform(pcfg)
	p.StartChurn(litmus.Catalog(), 26, litmus.Threads(1, 26))
	p.Warm(30e-3)

	ctx := context.Background()
	client := litmus.NewPricingClient("http://" + ln.Addr().String())
	const tenant = "acme"

	// One function through POST /v2/quote.
	target := litmus.FunctionsByAbbr()["recogn-py"]
	rec, err := p.Invoke(target, 0, 600)
	if err != nil {
		log.Fatal(err)
	}
	quote, err := client.Quote(ctx, litmus.QuoteRequest{
		Usage:  litmus.UsageFromRecord(rec),
		Tenant: tenant,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOST /v2/quote for %s:\n", rec.Abbr)
	fmt.Printf("  commercial: %10.2f MB·s\n", quote.Commercial)
	fmt.Printf("  litmus:     %10.2f MB·s (discount %.1f%%, MB weight %.2f)\n",
		quote.Price, 100*quote.Discount, quote.Estimate.Weight)

	// Two more invocations through the batch endpoint.
	var batch []litmus.QuoteRequest
	for _, abbr := range []string{"pager-py", "auth-go"} {
		rec, err := p.Invoke(litmus.FunctionsByAbbr()[abbr], 0, 600)
		if err != nil {
			log.Fatal(err)
		}
		batch = append(batch, litmus.QuoteRequest{Usage: litmus.UsageFromRecord(rec), Tenant: tenant})
	}
	items, err := client.QuoteBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOST /v2/quotes (batch of %d):\n", len(batch))
	for _, item := range items {
		if item.Error != nil {
			log.Fatal(item.Error)
		}
		fmt.Printf("  %-10s commercial %8.2f → litmus %8.2f (discount %.1f%%)\n",
			item.Quote.Abbr, item.Quote.Commercial, item.Quote.Price, 100*item.Quote.Discount)
	}

	// The provider-side ledger has accumulated all three invocations.
	sum, err := client.TenantSummary(ctx, tenant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /v2/tenants/%s/summary:\n", tenant)
	fmt.Printf("  invocations: %d\n", sum.Invocations)
	fmt.Printf("  commercial:  %10.2f MB·s\n", sum.Commercial)
	fmt.Printf("  billed:      %10.2f MB·s (aggregate discount %.1f%%)\n",
		sum.Billed, 100*sum.Discount)

	// The /v3 surface: stream usage as NDJSON, windowed by trace minute,
	// under an idempotency key.
	var records []litmus.UsageRecord
	for minute, abbr := range []string{"aes-py", "fib-py", "thum-py"} {
		rec, err := p.Invoke(litmus.FunctionsByAbbr()[abbr], 0, 600)
		if err != nil {
			log.Fatal(err)
		}
		records = append(records, litmus.UsageRecord{
			QuoteRequest: litmus.QuoteRequest{Usage: litmus.UsageFromRecord(rec), Tenant: tenant},
			Minute:       minute,
		})
	}
	streamed, err := client.StreamUsage(ctx, "billing-demo", records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOST /v3/usage (NDJSON stream of %d):\n", len(records))
	fmt.Printf("  accepted: %d, duplicates: %d, rejected: %d\n",
		streamed.Accepted, streamed.Duplicates, streamed.Rejected)

	// A retry under the same key is a no-op — the service dedups it.
	replayed, err := client.StreamUsage(ctx, "billing-demo", records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  replay under the same key: accepted %d, duplicates %d (no double-billing)\n",
		replayed.Accepted, replayed.Duplicates)

	// The windowed statement: commercial vs charged, minute by minute.
	stmt, err := client.Statement(ctx, tenant, 0, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /v3/tenants/%s/statement:\n", tenant)
	for _, line := range stmt.Lines {
		fmt.Printf("  minute %2d: %2d invocations, commercial %10.2f → billed %10.2f MB·s\n",
			line.StartMinute, line.Invocations, line.Commercial, line.Billed)
	}
	fmt.Printf("  TOTAL:     %2d invocations, commercial %10.2f → billed %10.2f (discount %.1f%%)\n",
		stmt.Invocations, stmt.Commercial, stmt.Billed, 100*stmt.Discount)
}
