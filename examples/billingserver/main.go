// Billingserver: runs the pricingd HTTP pricing flow in-process. It
// calibrates a machine, serves the pricing API on a local port, then plays
// a tenant agent: it measures a function on a congested machine and POSTs
// the measurements to /v1/quote.
//
//	go run ./examples/billingserver
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	litmus "repro"
	"repro/internal/core"
)

func main() {
	const seed = 3

	pcfg := litmus.DefaultPlatformConfig(seed)
	pcfg.BodyScale = 0.2
	pcfg.StartupScale = 0.2

	fmt.Println("calibrating provider tables…")
	cal, err := litmus.Calibrate(litmus.CalibratorConfig{Platform: pcfg})
	if err != nil {
		log.Fatal(err)
	}
	models, err := litmus.FitModels(cal)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the quoting API (same wire format as cmd/pricingd).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/quote", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Abbr     string  `json:"abbr"`
			Language string  `json:"language"`
			MemoryMB int     `json:"memoryMB"`
			TPrivate float64 `json:"tPrivate"`
			TShared  float64 `json:"tShared"`
			Probe    struct {
				TPrivate        float64 `json:"tPrivate"`
				TShared         float64 `json:"tShared"`
				MachineL3Misses float64 `json:"machineL3Misses"`
			} `json:"probe"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		base := models.Solo[req.Language]
		reading := core.Reading{
			Lang:       req.Language,
			PrivSlow:   req.Probe.TPrivate / base.TPrivate,
			SharedSlow: req.Probe.TShared / base.TShared,
			TotalSlow:  (req.Probe.TPrivate + req.Probe.TShared) / base.Total(),
			L3Misses:   req.Probe.MachineL3Misses,
		}
		est, err := models.Estimate(reading)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mem := float64(req.MemoryMB)
		commercial := mem * (req.TPrivate + req.TShared)
		price := mem * (req.TPrivate/est.PrivSlow + req.TShared/est.SharedSlow)
		json.NewEncoder(w).Encode(map[string]any{
			"abbr": req.Abbr, "commercial": commercial, "price": price,
			"discount": 1 - price/commercial, "mbWeight": est.Weight,
		})
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("pricing API on http://%s\n", ln.Addr())

	// Tenant agent: run a function on a congested machine and bill it.
	p := litmus.NewPlatform(pcfg)
	p.StartChurn(litmus.Catalog(), 26, litmus.Threads(1, 26))
	p.Warm(30e-3)
	target := litmus.FunctionsByAbbr()["recogn-py"]
	rec, err := p.Invoke(target, 0, 600)
	if err != nil {
		log.Fatal(err)
	}

	reqBody, _ := json.Marshal(map[string]any{
		"abbr": rec.Abbr, "language": rec.Language.String(), "memoryMB": rec.MemoryMB,
		"tPrivate": rec.TPrivate, "tShared": rec.TShared,
		"probe": map[string]any{
			"tPrivate":        rec.Probe.TPrivateSec,
			"tShared":         rec.Probe.TSharedSec,
			"machineL3Misses": rec.Probe.MachineL3Misses,
		},
	})
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/quote", ln.Addr()), "application/json", bytes.NewReader(reqBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var quote map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&quote); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOST /v1/quote for %s:\n", rec.Abbr)
	fmt.Printf("  commercial: %10.2f MB·s\n", quote["commercial"])
	fmt.Printf("  litmus:     %10.2f MB·s (discount %.1f%%, MB weight %.2f)\n",
		quote["price"], 100*quote["discount"].(float64), quote["mbWeight"])
}
