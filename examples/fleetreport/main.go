// Fleetreport: the fleet-scale billing story in one page. A 3-tenant
// invocation trace is synthesized (ramping toward a bursty plateau),
// expanded into timestamped arrivals on a compressed clock, and replayed
// across a 4-machine fleet with background churn; the streaming meter
// prices every completed invocation commercial-vs-Litmus and prints the
// per-tenant comparison.
//
// The same trace is then replayed under each routing policy — including
// the two cost-feedback policies, which route on the Litmus price signal
// itself — and the total bills are compared side by side: under
// interference-refunding prices, where the router sends work changes what
// tenants pay, not just how fast they run.
//
//	go run ./examples/fleetreport
package main

import (
	"fmt"
	"log"

	litmus "repro"
)

func main() {
	const seed = 11

	// A reduced-scale platform (the examples' usual fast path): scaled
	// bodies and startups, and trace minutes compressed to 0.25 simulated
	// seconds to match.
	pcfg := litmus.DefaultPlatformConfig(seed)
	pcfg.BodyScale = 0.15
	pcfg.StartupScale = 0.2

	fmt.Println("calibrating provider tables…")
	cal, err := litmus.Calibrate(litmus.CalibratorConfig{Platform: pcfg})
	if err != nil {
		log.Fatal(err)
	}
	models, err := litmus.FitModels(cal)
	if err != nil {
		log.Fatal(err)
	}

	tr, err := litmus.SynthesizeTrace(litmus.TraceSynthConfig{
		Tenants:            3,
		FunctionsPerTenant: 2,
		Minutes:            5,
		StartRate:          2,
		StepRate:           2,
		TargetRate:         8,
		Jitter:             0.2,
		Seed:               seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	arrivals, err := litmus.ExpandTrace(tr, litmus.TraceExpandConfig{MinuteSec: 0.25, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d invocations (%d tenants, %d minutes) over a 4-machine fleet…\n",
		len(arrivals), len(tr.Tenants()), tr.Minutes())

	simulate := func(policyName string) (*litmus.FleetReport, litmus.FleetResult) {
		policy, err := litmus.ParseRoutePolicy(policyName)
		if err != nil {
			log.Fatal(err)
		}
		report, result, err := litmus.SimulateFleet(
			litmus.FleetConfig{
				Machines:   4,
				Platform:   pcfg,
				Policy:     policy,
				ChurnCount: 8, // congested machines: the Litmus discounts bite
				// The cost-feedback policies route on this price signal;
				// the others ignore it.
				FeedbackPricer: litmus.NewLitmusPricer(models, 1),
			},
			arrivals,
			litmus.FleetMeterConfig{
				Pricers: []litmus.Pricer{
					litmus.NewCommercialPricer(1),
					litmus.NewLitmusPricer(models, 1),
				},
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		return report, result
	}

	report, result := simulate("least-loaded")
	fmt.Println()
	fmt.Println(report.BillTable())
	fmt.Println(litmus.FleetMachineTable(result))

	// Replay the identical trace under each policy: total Litmus bill vs
	// the commercial baseline, so the cost-feedback routers' effect on the
	// bill is directly comparable with the load-balancing classics.
	fmt.Println("policy comparison (same trace, fresh fleet per policy):")
	fmt.Printf("  %-24s %12s %12s %10s %10s\n", "policy", "commercial", "litmus", "discount", "completed")
	for _, name := range []string{"round-robin", "least-loaded", "cheapest-projected-bill", "congestion-avoiding"} {
		rep, res := simulate(name)
		lit := rep.TotalBills["litmus"]
		discount := 0.0
		if rep.TotalCommercial > 0 {
			discount = 1 - lit/rep.TotalCommercial
		}
		fmt.Printf("  %-24s %12.1f %12.1f %9.1f%% %10d\n",
			name, rep.TotalCommercial, lit, 100*discount, res.Completed)
	}
}
