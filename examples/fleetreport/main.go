// Fleetreport: the fleet-scale billing story in one page. A 3-tenant
// invocation trace is synthesized (ramping toward a bursty plateau),
// expanded into timestamped arrivals on a compressed clock, and replayed
// across a 4-machine fleet with background churn; the streaming meter
// prices every completed invocation commercial-vs-Litmus and prints the
// per-tenant comparison.
//
//	go run ./examples/fleetreport
package main

import (
	"fmt"
	"log"

	litmus "repro"
)

func main() {
	const seed = 11

	// A reduced-scale platform (the examples' usual fast path): scaled
	// bodies and startups, and trace minutes compressed to 0.25 simulated
	// seconds to match.
	pcfg := litmus.DefaultPlatformConfig(seed)
	pcfg.BodyScale = 0.15
	pcfg.StartupScale = 0.2

	fmt.Println("calibrating provider tables…")
	cal, err := litmus.Calibrate(litmus.CalibratorConfig{Platform: pcfg})
	if err != nil {
		log.Fatal(err)
	}
	models, err := litmus.FitModels(cal)
	if err != nil {
		log.Fatal(err)
	}

	tr, err := litmus.SynthesizeTrace(litmus.TraceSynthConfig{
		Tenants:            3,
		FunctionsPerTenant: 2,
		Minutes:            5,
		StartRate:          2,
		StepRate:           2,
		TargetRate:         8,
		Jitter:             0.2,
		Seed:               seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	arrivals, err := litmus.ExpandTrace(tr, litmus.TraceExpandConfig{MinuteSec: 0.25, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d invocations (%d tenants, %d minutes) over a 4-machine fleet…\n",
		len(arrivals), len(tr.Tenants()), tr.Minutes())

	policy, err := litmus.ParseRoutePolicy("least-loaded")
	if err != nil {
		log.Fatal(err)
	}
	report, result, err := litmus.SimulateFleet(
		litmus.FleetConfig{
			Machines:   4,
			Platform:   pcfg,
			Policy:     policy,
			ChurnCount: 8, // congested machines: the Litmus discounts bite
		},
		arrivals,
		litmus.FleetMeterConfig{
			Pricers: []litmus.Pricer{
				litmus.NewCommercialPricer(1),
				litmus.NewLitmusPricer(models, 1),
			},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(report.BillTable())
	fmt.Println(litmus.FleetMachineTable(result))
}
