# Developer entry points; CI runs the same steps (see .github/workflows/ci.yml).

.PHONY: build test race bench bench-baseline fmt vet

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

# One-pass sanity run of every benchmark.
bench:
	go test -run '^$$' -bench . -benchtime=1x ./...

# Record the ledger/ingest perf baseline as BENCH_ledger.json (see
# scripts/bench-ledger.sh; BENCHTIME overrides the default 1000x).
bench-baseline:
	./scripts/bench-ledger.sh BENCH_ledger.json

fmt:
	gofmt -l .

vet:
	go vet ./...
