# Developer entry points; CI runs the same steps (see .github/workflows/ci.yml).

.PHONY: build test race bench bench-baseline bench-wal bench-cluster \
	bench-e2e bench-all cover recovery-smoke failover-smoke fmt vet \
	litmusvet lint lint-tools

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

# One-pass sanity run of every benchmark.
bench:
	go test -run '^$$' -bench . -benchtime=1x ./...

# Record the ledger/ingest perf baseline as BENCH_ledger.json (see
# scripts/bench-ledger.sh; BENCHTIME overrides the default 1000x).
bench-baseline:
	./scripts/bench-ledger.sh BENCH_ledger.json

# Record the durable-ledger baseline as BENCH_wal.json: WAL append
# throughput per fsync mode, recovery replay rate, snapshot cost (see
# scripts/bench-wal.sh; BENCHTIME overrides the default 200x).
bench-wal:
	./scripts/bench-wal.sh BENCH_wal.json

# Record the cluster-mode baseline as BENCH_cluster.json: ring lookup,
# ring-aware client and router stream throughput, follower catch-up rate
# (see scripts/bench-cluster.sh; BENCHTIME overrides the default 20x).
bench-cluster:
	./scripts/bench-cluster.sh BENCH_cluster.json

# Record the end-to-end latency baseline as BENCH_e2e.json: cmd/loadgen
# drives a live pricingd open-loop at each arrival rate per fsync mode and
# records client-observed quantiles (see scripts/bench-e2e.sh; RATES,
# DURATION and FSYNC_MODES override the defaults).
bench-e2e:
	./scripts/bench-e2e.sh BENCH_e2e.json

# Refresh every committed benchmark baseline in one go.
bench-all: bench-baseline bench-wal bench-cluster bench-e2e

# Coverage gate for the billing subsystem: every test in internal/ledger/...
# (unit, durability, crash harness) counts toward internal/ledger coverage,
# which must stay >= $(COVER_MIN)%. The profile lands in cover_ledger.out
# (CI uploads it as an artifact).
COVER_MIN := 80
cover:
	go test -covermode=atomic -coverpkg=./internal/ledger -coverprofile=cover_ledger.out ./internal/ledger/...
	@total=$$(go tool cover -func=cover_ledger.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/ledger coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min=$(COVER_MIN) 'BEGIN { exit (t+0 >= min) ? 0 : 1 }' || \
	{ echo "coverage $$total% is below $(COVER_MIN)%"; exit 1; }

# Process-level crash-recovery smoke: SIGKILL a durable pricingd mid-run and
# prove the restarted daemon serves identical statements.
recovery-smoke:
	./scripts/recovery-smoke.sh

# Process-level failover smoke: replicate a primary into a hot standby,
# SIGKILL the primary with an unreplicated tail, promote, replay — the
# promoted node must bill exactly like an uninterrupted one.
failover-smoke:
	./scripts/failover-smoke.sh

fmt:
	gofmt -l .

vet:
	go vet ./...

# --- static analysis ---------------------------------------------------------

# Pinned third-party linter versions: lint-tools installs exactly these (it
# needs network, so CI runs it and caches the binaries); lint itself runs
# them only when installed, so offline checkouts still get the full
# first-party suite.
STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4

lint-tools:
	go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# The repo's own analyzers (see internal/analysis), run through go vet so
# results are cached per package like any other vet check. go build is
# incremental, so rebuilding the tool each run costs almost nothing.
litmusvet:
	go build -o bin/litmusvet ./cmd/litmusvet
	go vet -vettool=$(abspath bin/litmusvet) ./...

lint: litmusvet
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping (make lint-tools pins $(STATICCHECK_VERSION))"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; skipping (make lint-tools pins $(GOVULNCHECK_VERSION))"; fi
