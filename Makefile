# Developer entry points; CI runs the same steps (see .github/workflows/ci.yml).

.PHONY: build test race bench bench-baseline bench-wal cover recovery-smoke fmt vet

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

# One-pass sanity run of every benchmark.
bench:
	go test -run '^$$' -bench . -benchtime=1x ./...

# Record the ledger/ingest perf baseline as BENCH_ledger.json (see
# scripts/bench-ledger.sh; BENCHTIME overrides the default 1000x).
bench-baseline:
	./scripts/bench-ledger.sh BENCH_ledger.json

# Record the durable-ledger baseline as BENCH_wal.json: WAL append
# throughput per fsync mode, recovery replay rate, snapshot cost (see
# scripts/bench-wal.sh; BENCHTIME overrides the default 200x).
bench-wal:
	./scripts/bench-wal.sh BENCH_wal.json

# Coverage gate for the billing subsystem: every test in internal/ledger/...
# (unit, durability, crash harness) counts toward internal/ledger coverage,
# which must stay >= $(COVER_MIN)%. The profile lands in cover_ledger.out
# (CI uploads it as an artifact).
COVER_MIN := 80
cover:
	go test -covermode=atomic -coverpkg=./internal/ledger -coverprofile=cover_ledger.out ./internal/ledger/...
	@total=$$(go tool cover -func=cover_ledger.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/ledger coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min=$(COVER_MIN) 'BEGIN { exit (t+0 >= min) ? 0 : 1 }' || \
	{ echo "coverage $$total% is below $(COVER_MIN)%"; exit 1; }

# Process-level crash-recovery smoke: SIGKILL a durable pricingd mid-run and
# prove the restarted daemon serves identical statements.
recovery-smoke:
	./scripts/recovery-smoke.sh

fmt:
	gofmt -l .

vet:
	go vet ./...
